// Tests for CSV point IO and the workload spec parser.

#include <cmath>
#include <cstdio>
#include <string>

#include "gtest/gtest.h"
#include "sop/io/csv.h"
#include "sop/io/workload_parser.h"
#include "sop/stream/record_policy.h"

namespace sop {
namespace {

TEST(CsvTest, ParseBasic) {
  std::vector<Point> points;
  std::string error;
  ASSERT_TRUE(io::ParsePointsCsv("# header\n1,2.5,3\n2,4.5,-1\n\n", &points,
                                 &error))
      << error;
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].time, 1);
  EXPECT_EQ(points[0].values, (std::vector<double>{2.5, 3.0}));
  EXPECT_EQ(points[1].seq, 1);
  EXPECT_EQ(points[1].values[1], -1.0);
}

TEST(CsvTest, RejectsMalformedInput) {
  std::vector<Point> points;
  std::string error;
  EXPECT_FALSE(io::ParsePointsCsv("abc,1\n", &points, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos);
  EXPECT_FALSE(io::ParsePointsCsv("1,2\n2,3,4\n", &points, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_FALSE(io::ParsePointsCsv("5,1\n4,1\n", &points, &error));
  EXPECT_NE(error.find("non-decreasing"), std::string::npos);
  EXPECT_FALSE(io::ParsePointsCsv("5\n", &points, &error));
  EXPECT_FALSE(io::ParsePointsCsv("5,1,x\n", &points, &error));
}

TEST(CsvTest, RejectsNonFiniteValuesWithLineNumbers) {
  std::vector<Point> points;
  std::string error;
  EXPECT_FALSE(io::ParsePointsCsv("1,2.0\n2,nan\n", &points, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("non-finite"), std::string::npos) << error;
  EXPECT_FALSE(io::ParsePointsCsv("1,inf\n", &points, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_FALSE(io::ParsePointsCsv("1,-inf\n", &points, &error));
  // Out-of-range literals overflow to infinity in strtod; they must be
  // caught like any other non-finite value, not silently admitted.
  EXPECT_FALSE(io::ParsePointsCsv("1,1.0\n2,1e999\n3,1.0\n", &points, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
}

TEST(CsvTest, SkipQuarantinePolicyDropsBadLinesAndCounts) {
  io::CsvReadOptions options;
  options.policy = RecordPolicy::kSkipQuarantine;
  std::vector<Point> points;
  io::CsvReadStats stats;
  std::vector<std::string> quarantined;
  std::string error;
  const std::string text =
      "1,1.0\n2,nan\nbroken line\n3,2.0,9.9\n2,3.0\n4,4.0\n";
  ASSERT_TRUE(
      io::ParsePointsCsv(text, options, &points, &stats, &quarantined, &error))
      << error;
  ASSERT_EQ(points.size(), 3u);  // times 1, 2, 4 survive
  EXPECT_EQ(points[2].time, 4);
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.quarantined, 3u);
  EXPECT_EQ(stats.repaired, 0u);
  ASSERT_EQ(quarantined.size(), 3u);
  EXPECT_EQ(quarantined[0], "2,nan");
  EXPECT_EQ(quarantined[1], "broken line");
}

TEST(CsvTest, ClampRepairPolicyFixesValuesAndTimestamps) {
  io::CsvReadOptions options;
  options.policy = RecordPolicy::kClampRepair;
  std::vector<Point> points;
  io::CsvReadStats stats;
  std::string error;
  const std::string text = "5,1.0\n6,nan\n2,3.0\nnot a point\n8,4.0\n";
  ASSERT_TRUE(
      io::ParsePointsCsv(text, options, &points, &stats, nullptr, &error))
      << error;
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points[1].values[0], 0.0);  // nan clamped
  EXPECT_EQ(points[2].time, 6);         // regression clamped to predecessor
  EXPECT_EQ(stats.repaired, 2u);
  EXPECT_EQ(stats.quarantined, 1u);
  for (const Point& p : points) EXPECT_TRUE(std::isfinite(p.values[0]));
}

TEST(CsvTest, QuarantineSidecarSpoolsRawLines) {
  const std::string data_path = ::testing::TempDir() + "/sop_dirty.csv";
  const std::string sidecar_path = ::testing::TempDir() + "/sop_dirty.bad";
  std::string error;
  {
    std::FILE* f = std::fopen(data_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("1,1.5\n2,inf\ngarbage\n3,2.5\n", f);
    std::fclose(f);
  }
  io::CsvReadOptions options;
  options.policy = RecordPolicy::kSkipQuarantine;
  options.quarantine_path = sidecar_path;
  std::vector<Point> points;
  io::CsvReadStats stats;
  ASSERT_TRUE(io::LoadPointsCsv(data_path, options, &points, &stats, &error))
      << error;
  EXPECT_EQ(points.size(), 2u);
  EXPECT_EQ(stats.quarantined, 2u);

  std::FILE* f = std::fopen(sidecar_path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[256];
  std::string sidecar;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) sidecar += buf;
  std::fclose(f);
  EXPECT_EQ(sidecar, "2,inf\ngarbage\n");
  std::remove(data_path.c_str());
  std::remove(sidecar_path.c_str());
}

TEST(CsvTest, LenientParseOfAllBadInputYieldsEmptyOutputAndCounts) {
  // The parser itself stays lenient (true + empty output); refusing to run
  // on an empty load is the callers' job (sop_cli and the bench harness
  // exit nonzero).
  io::CsvReadOptions options;
  options.policy = RecordPolicy::kSkipQuarantine;
  std::vector<Point> points;
  io::CsvReadStats stats;
  std::string error;
  ASSERT_TRUE(io::ParsePointsCsv("nan,nan\nbad\n", options, &points, &stats,
                                 nullptr, &error))
      << error;
  EXPECT_TRUE(points.empty());
  EXPECT_EQ(stats.accepted, 0u);
  EXPECT_EQ(stats.quarantined, 2u);
}

TEST(CsvTest, RoundTrip) {
  std::vector<Point> points;
  points.emplace_back(0, 10, std::vector<double>{1.25, -3.75});
  points.emplace_back(1, 12, std::vector<double>{0.1, 1e-9});
  const std::string text = io::FormatPointsCsv(points);
  std::vector<Point> parsed;
  std::string error;
  ASSERT_TRUE(io::ParsePointsCsv(text, &parsed, &error)) << error;
  ASSERT_EQ(parsed.size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(parsed[i].time, points[i].time);
    EXPECT_EQ(parsed[i].values, points[i].values);
  }
}

TEST(CsvTest, FileRoundTrip) {
  std::vector<Point> points;
  points.emplace_back(0, 5, std::vector<double>{7.0});
  const std::string path = ::testing::TempDir() + "/sop_csv_test.csv";
  std::string error;
  ASSERT_TRUE(io::SavePointsCsv(path, points, &error)) << error;
  std::vector<Point> loaded;
  ASSERT_TRUE(io::LoadPointsCsv(path, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].values[0], 7.0);
  std::remove(path.c_str());
}

TEST(CsvTest, LoadMissingFileFails) {
  std::vector<Point> points;
  std::string error;
  EXPECT_FALSE(io::LoadPointsCsv("/nonexistent/file.csv", &points, &error));
  EXPECT_FALSE(error.empty());
}

TEST(WorkloadSpecTest, ParseFull) {
  const std::string spec = R"(
# demo workload
window_type time
metric manhattan
attrs 1 0 1
attrs 2 2
query 500 30 10000 500
query 800.5 50 20000 1000 1
query 300 10 5000 500 2
)";
  Workload w;
  std::string error;
  ASSERT_TRUE(io::ParseWorkloadSpec(spec, &w, &error)) << error;
  EXPECT_EQ(w.window_type(), WindowType::kTime);
  EXPECT_EQ(w.metric(), Metric::kManhattan);
  ASSERT_EQ(w.num_queries(), 3u);
  EXPECT_DOUBLE_EQ(w.query(1).r, 800.5);
  EXPECT_EQ(w.query(1).attribute_set, 1);
  EXPECT_EQ(w.query(2).attribute_set, 2);
  EXPECT_EQ(w.attribute_sets()[1], (std::vector<int>{0, 1}));
  EXPECT_EQ(w.attribute_sets()[2], (std::vector<int>{2}));
}

TEST(WorkloadSpecTest, RejectsBadSpecs) {
  Workload w;
  std::string error;
  EXPECT_FALSE(io::ParseWorkloadSpec("query 1 2 3\n", &w, &error));
  EXPECT_FALSE(io::ParseWorkloadSpec("bogus 1\n", &w, &error));
  EXPECT_FALSE(io::ParseWorkloadSpec("window_type sideways\n", &w, &error));
  EXPECT_FALSE(io::ParseWorkloadSpec("attrs 2 0\nquery 1 2 3 4\n", &w,
                                     &error));  // ids must start at 1
  EXPECT_FALSE(io::ParseWorkloadSpec("attrs 1 3 1\nquery 1 2 3 4\n", &w,
                                     &error));  // dims must increase
  EXPECT_FALSE(io::ParseWorkloadSpec("", &w, &error));  // no queries
  EXPECT_FALSE(
      io::ParseWorkloadSpec("query 1 2 3 4 9\n", &w, &error));  // bad set id
}

TEST(WorkloadSpecTest, RoundTrip) {
  Workload w(WindowType::kTime, Metric::kManhattan);
  const int set = w.AddAttributeSet({1, 3});
  w.AddQuery(OutlierQuery(2.5, 4, 100, 10, 0));
  w.AddQuery(OutlierQuery(7.25, 2, 50, 5, set));
  const std::string text = io::FormatWorkloadSpec(w);
  Workload parsed;
  std::string error;
  ASSERT_TRUE(io::ParseWorkloadSpec(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed.window_type(), w.window_type());
  EXPECT_EQ(parsed.metric(), w.metric());
  ASSERT_EQ(parsed.num_queries(), 2u);
  EXPECT_EQ(parsed.query(0), w.query(0));
  EXPECT_EQ(parsed.query(1), w.query(1));
  EXPECT_EQ(parsed.attribute_sets(), w.attribute_sets());
}

}  // namespace
}  // namespace sop
