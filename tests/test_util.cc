#include "test_util.h"

#include "sop/common/check.h"

namespace sop {
namespace testing {

namespace {

// Emission boundaries reachable by the stream, mirroring the driver: for
// count-based workloads, multiples of the slide gcd up to the number of
// points; for time-based, gcd-aligned boundaries from just after the first
// timestamp through the first boundary covering the last timestamp.
std::vector<int64_t> Boundaries(const Workload& workload,
                                const std::vector<Point>& points) {
  std::vector<int64_t> boundaries;
  const int64_t gcd = workload.SlideGcd();
  if (workload.window_type() == WindowType::kCount) {
    const int64_t n = static_cast<int64_t>(points.size());
    for (int64_t b = gcd; b <= n; b += gcd) boundaries.push_back(b);
  } else {
    if (points.empty()) return boundaries;
    const int64_t first =
        FirstBoundaryAtOrAfter(points.front().time + 1, gcd);
    const int64_t last = FirstBoundaryAtOrAfter(points.back().time + 1, gcd);
    for (int64_t b = first; b <= last; b += gcd) boundaries.push_back(b);
  }
  return boundaries;
}

}  // namespace

std::vector<QueryResult> ExpectedResults(const Workload& workload,
                                         std::vector<Point> points) {
  SOP_CHECK_MSG(workload.Validate().empty(), workload.Validate().c_str());
  for (size_t i = 0; i < points.size(); ++i) {
    points[i].seq = static_cast<Seq>(i);
  }
  const WindowType type = workload.window_type();
  std::vector<DistanceFn> dist;
  dist.reserve(workload.num_queries());
  for (size_t i = 0; i < workload.num_queries(); ++i) {
    dist.push_back(workload.MakeDistanceFn(i));
  }

  std::vector<QueryResult> results;
  for (int64_t boundary : Boundaries(workload, points)) {
    for (size_t qi = 0; qi < workload.num_queries(); ++qi) {
      const OutlierQuery& q = workload.query(qi);
      if (boundary % q.slide != 0) continue;
      const int64_t start = boundary - q.win;
      // Window population: key in [start, boundary).
      std::vector<const Point*> window;
      for (const Point& p : points) {
        const int64_t key = PointKey(p, type);
        if (key >= start && key < boundary) window.push_back(&p);
      }
      QueryResult result;
      result.query_index = qi;
      result.boundary = boundary;
      for (const Point* p : window) {
        int64_t neighbors = 0;
        for (const Point* other : window) {
          if (other == p) continue;
          if (dist[qi](*p, *other) <= q.r) ++neighbors;
        }
        if (neighbors < q.k) result.outliers.push_back(p->seq);
      }
      results.push_back(std::move(result));
    }
  }
  return results;
}

}  // namespace testing
}  // namespace sop
