// Edge-case and misuse tests across the library: alternative metrics,
// degenerate streams, contract violations (death tests).

#include <memory>

#include "gtest/gtest.h"
#include "sop/common/random.h"
#include "sop/core/sop_detector.h"
#include "sop/detector/driver.h"
#include "sop/detector/factory.h"
#include "sop/gen/stt.h"
#include "sop/stream/stream_buffer.h"
#include "test_util.h"

namespace sop {
namespace {

using testing::ExpectedResults;
using testing::ExpectSameResults;
using testing::Points1D;

TEST(ManhattanMetricTest, AllDetectorsMatchOracle) {
  Workload w(WindowType::kCount, Metric::kManhattan);
  w.AddQuery(OutlierQuery(1.0, 2, 16, 4));
  w.AddQuery(OutlierQuery(2.5, 4, 24, 8));
  Rng rng(31);
  std::vector<Point> points;
  for (Seq s = 0; s < 120; ++s) {
    points.emplace_back(s, s,
                        std::vector<double>{rng.Normal(5, 0.8),
                                            rng.Normal(5, 0.8)});
  }
  const std::vector<QueryResult> expected = ExpectedResults(w, points);
  for (const char* kind :
       {"sop", "leap", "mcod",
        "mcod-grid"}) {
    std::unique_ptr<OutlierDetector> d = CreateDetector(kind, w);
    ExpectSameResults(expected, CollectResults(w, points, d.get()),
                      std::string("manhattan/") + kind);
  }
}

TEST(DegenerateStreamTest, WindowLargerThanStream) {
  // The window never fills; every emission uses a partial window.
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.0, 2, 1000, 4));
  const std::vector<Point> points = Points1D(
      {0.0, 0.1, 5.0, 0.2, 0.3, 5.1, 0.4, 9.0, 0.5, 0.6, 5.2, 0.7});
  std::unique_ptr<OutlierDetector> sop = CreateDetector("sop", w);
  ExpectSameResults(ExpectedResults(w, points),
                    CollectResults(w, points, sop.get()), "partial windows");
}

TEST(DegenerateStreamTest, SinglePointWindows) {
  // win == slide == 1: every window holds exactly one point, which can
  // never have a neighbor -> always an outlier.
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(100.0, 1, 1, 1));
  const std::vector<Point> points = Points1D({1, 1, 1, 1});
  std::unique_ptr<OutlierDetector> sop = CreateDetector("sop", w);
  std::vector<QueryResult> results = CollectResults(w, points, sop.get());
  ASSERT_EQ(results.size(), 4u);
  for (const QueryResult& r : results) {
    EXPECT_EQ(r.outliers.size(), 1u);
  }
}

TEST(DegenerateStreamTest, TiedTimestampsTimeWindows) {
  // All points share one timestamp: one emission covers them all.
  Workload w(WindowType::kTime);
  w.AddQuery(OutlierQuery(1.0, 2, 10, 5));
  std::vector<Point> points;
  for (Seq s = 0; s < 10; ++s) {
    points.emplace_back(s, 7, std::vector<double>{s < 8 ? 0.0 : 50.0});
  }
  std::unique_ptr<OutlierDetector> sop = CreateDetector("sop", w);
  ExpectSameResults(ExpectedResults(w, points),
                    CollectResults(w, points, sop.get()), "tied timestamps");
}

TEST(ContractTest, BufferRejectsOutOfOrderSeq) {
  StreamBuffer buffer(WindowType::kCount);
  buffer.Append(Point(0, 0, {1.0}));
  EXPECT_DEATH(buffer.Append(Point(5, 5, {1.0})), "seq order");
}

TEST(ContractTest, BufferRejectsDecreasingKeys) {
  StreamBuffer buffer(WindowType::kTime);
  buffer.Append(Point(0, 10, {1.0}));
  EXPECT_DEATH(buffer.Append(Point(1, 5, {1.0})), "non-decreasing");
}

TEST(ContractTest, ResetToRequiresEmptyBuffer) {
  StreamBuffer buffer(WindowType::kCount);
  buffer.Append(Point(0, 0, {1.0}));
  EXPECT_DEATH(buffer.ResetTo(10), "empty");
}

TEST(ContractTest, PlanRejectsMixedAttributeSets) {
  Workload w(WindowType::kCount);
  const int set = w.AddAttributeSet({0});
  w.AddQuery(OutlierQuery(1.0, 2, 8, 4, 0));
  w.AddQuery(OutlierQuery(1.0, 2, 8, 4, set));
  EXPECT_DEATH(WorkloadPlan plan(w), "single attribute set");
}

TEST(ContractTest, DetectorsRejectInvalidWorkloads) {
  Workload empty(WindowType::kCount);
  EXPECT_DEATH(CreateDetector("naive", empty), "no queries");
  Workload bad(WindowType::kCount);
  bad.AddQuery(OutlierQuery(1.0, 0, 8, 4));
  EXPECT_DEATH(CreateDetector("sop", bad), "k must");
}

TEST(SttAnomalyTest, AnomalyRateDrivesOutlierCount) {
  // More injected anomalies -> more detected outliers, same workload.
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(400.0, 8, 2000, 500));
  auto run = [&w](double rate) {
    gen::SttOptions options;
    options.seed = 9;
    options.anomaly_rate = rate;
    std::unique_ptr<OutlierDetector> d = CreateDetector("sop", w);
    uint64_t outliers = 0;
    RunStream(w, gen::GenerateStt(6000, options), d.get(),
              [&outliers](const QueryResult& r) {
                outliers += r.outliers.size();
              });
    return outliers;
  };
  const uint64_t low = run(0.005);
  const uint64_t high = run(0.08);
  EXPECT_GT(high, low * 2);
}

TEST(SlideGcdOneTest, CoprimeSlides) {
  // Slides 2 and 3: the swift query slides every point-pair... gcd 1
  // would batch every point; use 2 and 3 -> gcd 1.
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.0, 1, 6, 2));
  w.AddQuery(OutlierQuery(1.0, 1, 6, 3));
  EXPECT_EQ(w.SlideGcd(), 1);
  const std::vector<Point> points =
      Points1D({0.0, 0.1, 9.0, 0.2, 9.1, 0.3, 0.4, 9.2, 0.5, 0.6});
  std::unique_ptr<OutlierDetector> sop = CreateDetector("sop", w);
  ExpectSameResults(ExpectedResults(w, points),
                    CollectResults(w, points, sop.get()), "gcd 1");
}

}  // namespace
}  // namespace sop
