// Tests for partitioned execution: the generic splitter, the Sec. 3.2
// grouped-SOP strawman, and the grid-indexed MCOD variant — all of which
// must agree exactly with the oracle and with integrated SOP.

#include <memory>

#include "gtest/gtest.h"
#include "sop/baselines/mcod.h"
#include "sop/common/random.h"
#include "sop/core/grouped_sop.h"
#include "sop/core/sop_detector.h"
#include "sop/detector/driver.h"
#include "sop/detector/factory.h"
#include "sop/detector/partitioned.h"
#include "test_util.h"

namespace sop {
namespace {

using testing::ExpectedResults;
using testing::ExpectSameResults;

std::vector<Point> ClusteredStream(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (Seq s = 0; s < n; ++s) {
    std::vector<double> v(2);
    if (rng.Bernoulli(0.12)) {
      v = {rng.UniformDouble(0, 30), rng.UniformDouble(0, 30)};
    } else {
      const double c = rng.Bernoulli(0.5) ? 8.0 : 20.0;
      v = {rng.Normal(c, 1.0), rng.Normal(c, 1.0)};
    }
    points.emplace_back(s, s, std::move(v));
  }
  return points;
}

Workload MixedKWorkload() {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.5, 2, 16, 4));
  w.AddQuery(OutlierQuery(3.0, 2, 12, 4));
  w.AddQuery(OutlierQuery(2.0, 5, 16, 8));
  w.AddQuery(OutlierQuery(4.0, 5, 20, 4));
  w.AddQuery(OutlierQuery(2.5, 7, 8, 4));
  return w;
}

TEST(PartitionedDetectorTest, SplitsByArbitraryKeys) {
  const Workload w = MixedKWorkload();
  // Partition queries {0,1} | {2,3} | {4}.
  const std::vector<int> keys = {7, 7, 3, 3, 9};
  PartitionedDetector detector(
      "split", w, keys, [](const Workload& sub) {
        return std::make_unique<SopDetector>(sub);
      });
  EXPECT_EQ(detector.num_children(), 3u);
  EXPECT_STREQ(detector.name(), "split");
  // Results identical to the oracle despite the arbitrary split.
  const std::vector<Point> points = ClusteredStream(120, 8);
  ExpectSameResults(ExpectedResults(w, points),
                    CollectResults(w, points, &detector), "split");
}

TEST(GroupedSopTest, OneChildPerDistinctK) {
  GroupedSopDetector detector(MixedKWorkload());
  EXPECT_EQ(detector.num_children(), 3u);  // k in {2, 5, 7}
  EXPECT_STREQ(detector.name(), "grouped-sop");
}

TEST(GroupedSopTest, MatchesIntegratedSopAndOracle) {
  const Workload w = MixedKWorkload();
  const std::vector<Point> points = ClusteredStream(140, 21);
  const std::vector<QueryResult> expected = ExpectedResults(w, points);
  GroupedSopDetector grouped(w);
  ExpectSameResults(expected, CollectResults(w, points, &grouped),
                    "grouped-sop");
  SopDetector integrated(w);
  ExpectSameResults(expected, CollectResults(w, points, &integrated),
                    "integrated sop");
}

TEST(GroupedSopTest, SharingReducesEvidenceMemory) {
  // Many k-groups over the same r's: the integrated LSky stores shared
  // skyband points once, the grouped strawman once per group.
  Workload w(WindowType::kCount);
  for (int64_t k = 2; k <= 12; ++k) {
    w.AddQuery(OutlierQuery(2.0, k, 40, 8));
  }
  const std::vector<Point> points = ClusteredStream(200, 33);
  SopDetector integrated(w);
  GroupedSopDetector grouped(w);
  CollectResults(w, points, &integrated);
  CollectResults(w, points, &grouped);
  EXPECT_GT(grouped.MemoryBytes(), 2 * integrated.MemoryBytes());
}

TEST(McodGridTest, GridVariantMatchesLinearVariant) {
  const Workload w = MixedKWorkload();
  const std::vector<Point> points = ClusteredStream(150, 55);
  const std::vector<QueryResult> expected = ExpectedResults(w, points);
  McodDetector linear(w);
  ExpectSameResults(expected, CollectResults(w, points, &linear),
                    "mcod linear");
  McodDetector::Options options;
  options.use_grid_index = true;
  McodDetector grid(w, options);
  EXPECT_STREQ(grid.name(), "mcod-grid");
  ExpectSameResults(expected, CollectResults(w, points, &grid), "mcod grid");
}

TEST(McodGridTest, GridVariantHandlesTimeWindows) {
  Workload w(WindowType::kTime);
  w.AddQuery(OutlierQuery(1.5, 2, 20, 5));
  w.AddQuery(OutlierQuery(3.0, 4, 40, 10));
  Rng rng(77);
  std::vector<Point> points;
  Timestamp t = 0;
  for (Seq s = 0; s < 120; ++s) {
    t += rng.UniformInt(0, 2);
    points.emplace_back(
        s, t,
        std::vector<double>{rng.Normal(5, 1.0), rng.Normal(5, 1.0)});
  }
  McodDetector::Options options;
  options.use_grid_index = true;
  McodDetector grid(w, options);
  ExpectSameResults(ExpectedResults(w, points),
                    CollectResults(w, points, &grid), "mcod grid time");
}

TEST(SopGridTest, GridVariantMatchesLinearVariant) {
  const Workload w = MixedKWorkload();
  const std::vector<Point> points = ClusteredStream(150, 61);
  const std::vector<QueryResult> expected = ExpectedResults(w, points);
  SopDetector::Options options;
  options.use_grid_index = true;
  SopDetector grid(w, options);
  EXPECT_STREQ(grid.name(), "sop-grid");
  ExpectSameResults(expected, CollectResults(w, points, &grid), "sop grid");
}

TEST(SopGridTest, GridVariantHandlesTimeWindows) {
  Workload w(WindowType::kTime);
  w.AddQuery(OutlierQuery(1.5, 2, 20, 5));
  w.AddQuery(OutlierQuery(3.0, 4, 40, 10));
  Rng rng(78);
  std::vector<Point> points;
  Timestamp t = 0;
  for (Seq s = 0; s < 120; ++s) {
    t += rng.UniformInt(0, 2);
    points.emplace_back(
        s, t,
        std::vector<double>{rng.Normal(5, 1.0), rng.Normal(5, 1.0)});
  }
  SopDetector::Options options;
  options.use_grid_index = true;
  SopDetector grid(w, options);
  ExpectSameResults(ExpectedResults(w, points),
                    CollectResults(w, points, &grid), "sop grid time");
}

TEST(FactoryTest, KnowsAllNames) {
  for (const char* name : {"sop", "sop-grid", "grouped-sop", "mcod-grid",
                           "leap", "mcod", "naive"}) {
    EXPECT_TRUE(IsKnownDetector(name)) << name;
  }
  EXPECT_FALSE(IsKnownDetector("bogus"));
  EXPECT_FALSE(IsKnownDetector(""));
  EXPECT_EQ(KnownDetectorNames().size(), 7u);
}

TEST(FactoryTest, AllKindsMatchOracleOnOneWorkload) {
  const Workload w = MixedKWorkload();
  const std::vector<Point> points = ClusteredStream(120, 99);
  const std::vector<QueryResult> expected = ExpectedResults(w, points);
  for (const std::string& name : KnownDetectorNames()) {
    std::unique_ptr<OutlierDetector> d = CreateDetector(name, w);
    ExpectSameResults(expected, CollectResults(w, points, d.get()), name);
  }
}

}  // namespace
}  // namespace sop
