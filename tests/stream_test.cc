// Unit tests for sop/stream: window arithmetic, the sliding buffer, and
// sources.

#include "gtest/gtest.h"
#include "sop/stream/source.h"
#include "sop/stream/stream_buffer.h"
#include "sop/stream/window.h"
#include "test_util.h"

namespace sop {
namespace {

TEST(WindowTest, PointKeySelectsByType) {
  const Point p(7, 1234, {1.0});
  EXPECT_EQ(PointKey(p, WindowType::kCount), 7);
  EXPECT_EQ(PointKey(p, WindowType::kTime), 1234);
}

TEST(WindowTest, EmitsAt) {
  EXPECT_TRUE(EmitsAt(500, 500));
  EXPECT_TRUE(EmitsAt(1000, 500));
  EXPECT_FALSE(EmitsAt(750, 500));
  EXPECT_TRUE(EmitsAt(0, 500));
}

TEST(WindowTest, FirstBoundaryAtOrAfter) {
  EXPECT_EQ(FirstBoundaryAtOrAfter(0, 10), 0);
  EXPECT_EQ(FirstBoundaryAtOrAfter(1, 10), 10);
  EXPECT_EQ(FirstBoundaryAtOrAfter(10, 10), 10);
  EXPECT_EQ(FirstBoundaryAtOrAfter(11, 10), 20);
  EXPECT_EQ(FirstBoundaryAtOrAfter(-5, 10), 0);
  EXPECT_EQ(FirstBoundaryAtOrAfter(-10, 10), -10);
  EXPECT_EQ(FirstBoundaryAtOrAfter(-11, 10), -10);
}

TEST(StreamBufferTest, AppendAndAccess) {
  StreamBuffer buffer(WindowType::kCount);
  EXPECT_TRUE(buffer.empty());
  EXPECT_EQ(buffer.next_seq(), 0);
  buffer.Append(Point(0, 100, {1.0}));
  buffer.Append(Point(1, 101, {2.0}));
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.At(1).values[0], 2.0);
  EXPECT_TRUE(buffer.Contains(0));
  EXPECT_FALSE(buffer.Contains(2));
}

TEST(StreamBufferTest, ExpireBeforeCountKeys) {
  StreamBuffer buffer(WindowType::kCount);
  for (Seq s = 0; s < 10; ++s) buffer.Append(Point(s, s, {0.0}));
  EXPECT_EQ(buffer.ExpireBefore(4), 4u);
  EXPECT_EQ(buffer.first_seq(), 4);
  EXPECT_EQ(buffer.size(), 6u);
  EXPECT_FALSE(buffer.Contains(3));
  EXPECT_TRUE(buffer.Contains(4));
  // Expiry is monotone; asking again drops nothing.
  EXPECT_EQ(buffer.ExpireBefore(4), 0u);
}

TEST(StreamBufferTest, ExpireBeforeTimeKeys) {
  StreamBuffer buffer(WindowType::kTime);
  // Several points can share a timestamp.
  const Timestamp times[] = {10, 10, 12, 15, 15, 20};
  for (Seq s = 0; s < 6; ++s) buffer.Append(Point(s, times[s], {0.0}));
  EXPECT_EQ(buffer.ExpireBefore(12), 2u);
  EXPECT_EQ(buffer.first_seq(), 2);
  EXPECT_EQ(buffer.ExpireBefore(16), 3u);
  EXPECT_EQ(buffer.first_seq(), 5);
}

TEST(StreamBufferTest, LowerBoundKey) {
  StreamBuffer buffer(WindowType::kTime);
  const Timestamp times[] = {10, 10, 12, 15, 15, 20};
  for (Seq s = 0; s < 6; ++s) buffer.Append(Point(s, times[s], {0.0}));
  EXPECT_EQ(buffer.LowerBoundKey(5), 0);
  EXPECT_EQ(buffer.LowerBoundKey(10), 0);
  EXPECT_EQ(buffer.LowerBoundKey(11), 2);
  EXPECT_EQ(buffer.LowerBoundKey(15), 3);
  EXPECT_EQ(buffer.LowerBoundKey(21), 6);  // next_seq when none qualify
}

TEST(StreamBufferTest, MemoryBytesGrowsWithContent) {
  StreamBuffer buffer(WindowType::kCount);
  const size_t empty = buffer.MemoryBytes();
  for (Seq s = 0; s < 100; ++s)
    buffer.Append(Point(s, s, {1.0, 2.0, 3.0, 4.0}));
  EXPECT_GT(buffer.MemoryBytes(), empty);
}

TEST(VectorSourceTest, YieldsAllPointsThenStops) {
  VectorSource source(testing::Points1D({1.0, 2.0, 3.0}));
  Point p;
  int count = 0;
  while (source.Next(&p)) ++count;
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(source.Next(&p));
}

}  // namespace
}  // namespace sop
