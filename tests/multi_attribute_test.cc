// Tests for multi-attribute workloads (paper Fig. 10(b)): the divide-and-
// conquer wrapper and the factory's automatic splitting.

#include <memory>

#include "gtest/gtest.h"
#include "sop/common/random.h"
#include "sop/core/multi_attribute.h"
#include "sop/core/sop_detector.h"
#include "sop/detector/driver.h"
#include "sop/detector/factory.h"
#include "test_util.h"

namespace sop {
namespace {

using testing::ExpectedResults;
using testing::ExpectSameResults;

// 3-D stream where each attribute pair behaves differently.
std::vector<Point> Stream3D(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (Seq s = 0; s < n; ++s) {
    std::vector<double> v(3);
    v[0] = rng.Bernoulli(0.2) ? rng.UniformDouble(0, 20) : rng.Normal(5, 0.5);
    v[1] = rng.Bernoulli(0.1) ? rng.UniformDouble(0, 20) : rng.Normal(9, 0.7);
    v[2] = rng.Normal(2, 0.3);
    points.emplace_back(s, s, std::move(v));
  }
  return points;
}

Workload ThreeGroupWorkload(size_t queries_per_group) {
  Workload w(WindowType::kCount);
  const int set_a = w.AddAttributeSet({0});
  const int set_b = w.AddAttributeSet({1, 2});
  // Group 0 uses the full space (attribute set 0).
  for (size_t i = 0; i < queries_per_group; ++i) {
    const double r = 0.8 + 0.4 * static_cast<double>(i);
    w.AddQuery(OutlierQuery(r, 2 + static_cast<int64_t>(i), 16, 4, 0));
    w.AddQuery(OutlierQuery(r, 2, 16, 4, set_a));
    w.AddQuery(OutlierQuery(r, 3, 24, 8, set_b));
  }
  return w;
}

TEST(MultiAttributeTest, WrapperSplitsPerAttributeSet) {
  const Workload w = ThreeGroupWorkload(2);
  MultiAttributeDetector detector(w, [](const Workload& sub) {
    return std::make_unique<SopDetector>(sub);
  });
  EXPECT_EQ(detector.num_children(), 3u);
  EXPECT_STREQ(detector.name(), "multiattr-sop");
}

TEST(MultiAttributeTest, SopMatchesOracleAcrossAttributeGroups) {
  const Workload w = ThreeGroupWorkload(3);
  const std::vector<Point> points = Stream3D(120, 19);
  const std::vector<QueryResult> expected = ExpectedResults(w, points);
  std::unique_ptr<OutlierDetector> sop = CreateDetector("sop", w);
  ExpectSameResults(expected, CollectResults(w, points, sop.get()),
                    "multiattr sop");
}

TEST(MultiAttributeTest, AllDetectorsAgreeAcrossAttributeGroups) {
  const Workload w = ThreeGroupWorkload(2);
  const std::vector<Point> points = Stream3D(100, 23);
  const std::vector<QueryResult> expected = ExpectedResults(w, points);
  for (const char* kind :
       {"naive", "sop", "leap",
        "mcod"}) {
    std::unique_ptr<OutlierDetector> d = CreateDetector(kind, w);
    ExpectSameResults(expected, CollectResults(w, points, d.get()),
                      std::string("multiattr/") + kind);
  }
}

TEST(MultiAttributeTest, FactoryOnlyWrapsWhenNeeded) {
  Workload single(WindowType::kCount);
  single.AddQuery(OutlierQuery(1.0, 2, 8, 4));
  std::unique_ptr<OutlierDetector> plain =
      CreateDetector("sop", single);
  EXPECT_STREQ(plain->name(), "sop");

  const Workload multi = ThreeGroupWorkload(1);
  std::unique_ptr<OutlierDetector> wrapped =
      CreateDetector("sop", multi);
  EXPECT_STREQ(wrapped->name(), "multiattr-sop");
}

}  // namespace
}  // namespace sop
