// Unit tests for sop/common: distances, RNG, math helpers.

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sop/common/distance.h"
#include "sop/common/fenwick.h"
#include "sop/common/math_util.h"
#include "sop/common/memory.h"
#include "sop/common/random.h"
#include "sop/common/serialize.h"

namespace sop {
namespace {

Point MakePoint(std::vector<double> values) {
  return Point(0, 0, std::move(values));
}

TEST(DistanceTest, EuclideanFullSpace) {
  DistanceFn dist(Metric::kEuclidean);
  EXPECT_DOUBLE_EQ(dist(MakePoint({0, 0}), MakePoint({3, 4})), 5.0);
  EXPECT_DOUBLE_EQ(dist(MakePoint({1, 1}), MakePoint({1, 1})), 0.0);
  EXPECT_DOUBLE_EQ(dist(MakePoint({-1}), MakePoint({2})), 3.0);
}

TEST(DistanceTest, ManhattanFullSpace) {
  DistanceFn dist(Metric::kManhattan);
  EXPECT_DOUBLE_EQ(dist(MakePoint({0, 0}), MakePoint({3, 4})), 7.0);
  EXPECT_DOUBLE_EQ(dist(MakePoint({-2, 5}), MakePoint({1, 1})), 7.0);
}

TEST(DistanceTest, SubspaceSelectsAttributes) {
  DistanceFn dist(Metric::kEuclidean, {0, 2});
  // Middle attribute differs wildly but is not part of the subspace.
  EXPECT_DOUBLE_EQ(dist(MakePoint({0, 100, 0}), MakePoint({3, -100, 4})), 5.0);
  DistanceFn manhattan(Metric::kManhattan, {1});
  EXPECT_DOUBLE_EQ(
      manhattan(MakePoint({100, 2, 100}), MakePoint({-5, 7, -5})), 5.0);
}

TEST(DistanceTest, SymmetricAndNonNegative) {
  DistanceFn dist(Metric::kEuclidean);
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const Point a = MakePoint({rng.Normal(), rng.Normal(), rng.Normal()});
    const Point b = MakePoint({rng.Normal(), rng.Normal(), rng.Normal()});
    EXPECT_GE(dist(a, b), 0.0);
    EXPECT_DOUBLE_EQ(dist(a, b), dist(b, a));
  }
}

TEST(DistanceTest, ParseMetric) {
  Metric m;
  EXPECT_TRUE(ParseMetric("euclidean", &m));
  EXPECT_EQ(m, Metric::kEuclidean);
  EXPECT_TRUE(ParseMetric("manhattan", &m));
  EXPECT_EQ(m, Metric::kManhattan);
  EXPECT_FALSE(ParseMetric("cosine", &m));
  EXPECT_STREQ(MetricName(Metric::kEuclidean), "euclidean");
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 9u);  // all values hit
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(21);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(10.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(33);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(MathTest, GcdAll) {
  EXPECT_EQ(GcdAll({50}), 50);
  EXPECT_EQ(GcdAll({100, 150, 250}), 50);
  EXPECT_EQ(GcdAll({7, 11}), 1);
  EXPECT_EQ(GcdAll({500, 500, 500}), 500);
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 5), 0);
  EXPECT_EQ(CeilDiv(1, 5), 1);
  EXPECT_EQ(CeilDiv(5, 5), 1);
  EXPECT_EQ(CeilDiv(6, 5), 2);
}

TEST(FenwickTest, PrefixSumsMatchBruteForce) {
  const int n = 37;
  FenwickTree tree(n);
  std::vector<int64_t> reference(static_cast<size_t>(n) + 1, 0);
  Rng rng(17);
  for (int step = 0; step < 500; ++step) {
    const int pos = static_cast<int>(rng.UniformInt(1, n));
    const int64_t delta = rng.UniformInt(-3, 3);
    tree.Add(pos, delta);
    reference[static_cast<size_t>(pos)] += delta;
    const int query = static_cast<int>(rng.UniformInt(0, n));
    int64_t expected = 0;
    for (int i = 1; i <= query; ++i) expected += reference[static_cast<size_t>(i)];
    ASSERT_EQ(tree.PrefixSum(query), expected) << "step " << step;
  }
}

TEST(FenwickTest, ResetZeroes) {
  FenwickTree tree(8);
  tree.Add(3, 5);
  tree.Reset(8);
  EXPECT_EQ(tree.PrefixSum(8), 0);
  tree.Reset(2);
  EXPECT_EQ(tree.size(), 2);
}

TEST(FenwickTest, UndoByNegativeAdd) {
  FenwickTree tree(16);
  tree.Add(4, 1);
  tree.Add(9, 1);
  tree.Add(4, -1);
  tree.Add(9, -1);
  for (int i = 0; i <= 16; ++i) EXPECT_EQ(tree.PrefixSum(i), 0);
}

TEST(SerializeTest, RoundTripAllTypes) {
  BinaryWriter w;
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefULL);
  w.WriteI64(-42);
  w.WriteDouble(3.25);
  w.WriteBool(true);
  w.WriteBool(false);
  BinaryReader r(w.bytes());
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  bool b1, b2;
  ASSERT_TRUE(r.ReadU32(&u32));
  ASSERT_TRUE(r.ReadU64(&u64));
  ASSERT_TRUE(r.ReadI64(&i64));
  ASSERT_TRUE(r.ReadDouble(&d));
  ASSERT_TRUE(r.ReadBool(&b1));
  ASSERT_TRUE(r.ReadBool(&b2));
  EXPECT_EQ(u32, 0xdeadbeef);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.25);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, UnderflowFailsAndStaysFailed) {
  BinaryWriter w;
  w.WriteU32(7);
  BinaryReader r(w.bytes());
  uint64_t u64;
  EXPECT_FALSE(r.ReadU64(&u64));  // only 4 bytes available
  uint32_t u32;
  EXPECT_FALSE(r.ReadU32(&u32));  // failed reader stays failed
  EXPECT_FALSE(r.AtEnd());
}

TEST(SerializeTest, BadBoolRejected) {
  std::string bytes = "\x02";
  BinaryReader r(bytes);
  bool b;
  EXPECT_FALSE(r.ReadBool(&b));
}

TEST(MemoryTest, VectorHeapBytesTracksCapacity) {
  std::vector<int64_t> v;
  EXPECT_EQ(VectorHeapBytes(v), 0u);
  v.reserve(10);
  EXPECT_EQ(VectorHeapBytes(v), 10 * sizeof(int64_t));
}

}  // namespace
}  // namespace sop
