// Tests for SopSession: dynamic query registration/removal over a live
// stream with history replay.

#include <map>
#include <vector>

#include "gtest/gtest.h"
#include "sop/common/random.h"
#include "sop/core/session.h"
#include "test_util.h"

namespace sop {
namespace {

std::vector<Point> SessionStream(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (Seq s = 0; s < n; ++s) {
    const double v = rng.Bernoulli(0.15) ? rng.UniformDouble(0, 40)
                                         : rng.Normal(12, 1.0);
    points.emplace_back(s, s, std::vector<double>{v});
  }
  return points;
}

// Drives a session over batches of `span` points; collects results per
// query id.
std::map<QueryId, std::vector<SessionResult>> Drive(
    SopSession* session, const std::vector<Point>& points, int64_t span,
    int64_t from_batch, int64_t to_batch) {
  std::map<QueryId, std::vector<SessionResult>> out;
  for (int64_t b = from_batch; b < to_batch; ++b) {
    std::vector<Point> batch(
        points.begin() + static_cast<size_t>(b * span),
        points.begin() + static_cast<size_t>((b + 1) * span));
    for (SessionResult& r : session->Advance(std::move(batch),
                                             (b + 1) * span)) {
      out[r.query_id].push_back(std::move(r));
    }
  }
  return out;
}

TEST(SopSessionTest, StaticWorkloadMatchesOracle) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.5, 2, 16, 4));
  w.AddQuery(OutlierQuery(3.0, 4, 24, 8));
  const std::vector<Point> points = SessionStream(96, 5);

  SopSession session(WindowType::kCount, Metric::kEuclidean, 64);
  const QueryId q0 = session.AddQuery(w.query(0));
  const QueryId q1 = session.AddQuery(w.query(1));
  auto by_id = Drive(&session, points, 4, 0, 24);

  const std::vector<QueryResult> expected =
      testing::ExpectedResults(w, points);
  std::map<QueryId, std::vector<const QueryResult*>> expected_by_id;
  for (const QueryResult& r : expected) {
    expected_by_id[r.query_index == 0 ? q0 : q1].push_back(&r);
  }
  for (const auto& [id, results] : by_id) {
    const auto& exp = expected_by_id[id];
    ASSERT_EQ(results.size(), exp.size());
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].boundary, exp[i]->boundary);
      EXPECT_EQ(results[i].outliers, exp[i]->outliers);
    }
  }
}

TEST(SopSessionTest, AddedQuerySeesReplayedHistory) {
  // Register q1 only after half the stream; thanks to replay its first
  // emission must equal what a from-the-start run would produce.
  const std::vector<Point> points = SessionStream(96, 7);
  const OutlierQuery q_initial(1.5, 2, 16, 4);
  const OutlierQuery q_late(2.5, 3, 32, 8);

  SopSession session(WindowType::kCount, Metric::kEuclidean, 64);
  session.AddQuery(q_initial);
  Drive(&session, points, 4, 0, 12);  // first 48 points
  const QueryId late_id = session.AddQuery(q_late);
  auto by_id = Drive(&session, points, 4, 12, 24);

  Workload full(WindowType::kCount);
  full.AddQuery(q_initial);
  full.AddQuery(q_late);
  const std::vector<QueryResult> expected =
      testing::ExpectedResults(full, points);
  std::vector<const QueryResult*> late_expected;
  for (const QueryResult& r : expected) {
    if (r.query_index == 1 && r.boundary > 48) late_expected.push_back(&r);
  }
  const auto& late_results = by_id[late_id];
  ASSERT_EQ(late_results.size(), late_expected.size());
  for (size_t i = 0; i < late_results.size(); ++i) {
    EXPECT_EQ(late_results[i].boundary, late_expected[i]->boundary);
    EXPECT_EQ(late_results[i].outliers, late_expected[i]->outliers)
        << "late query emission " << i;
  }
}

TEST(SopSessionTest, RemovedQueryStopsEmitting) {
  const std::vector<Point> points = SessionStream(64, 9);
  SopSession session(WindowType::kCount, Metric::kEuclidean, 64);
  const QueryId keep = session.AddQuery(OutlierQuery(1.5, 2, 16, 4));
  const QueryId gone = session.AddQuery(OutlierQuery(2.0, 3, 16, 4));
  auto first = Drive(&session, points, 4, 0, 8);
  EXPECT_TRUE(first.count(gone));
  ASSERT_TRUE(session.RemoveQuery(gone));
  EXPECT_FALSE(session.RemoveQuery(gone));  // already removed
  auto second = Drive(&session, points, 4, 8, 16);
  EXPECT_FALSE(second.count(gone));
  EXPECT_TRUE(second.count(keep));
  EXPECT_EQ(session.num_queries(), 1u);
}

TEST(SopSessionTest, EmptySessionEmitsNothingButRetainsHistory) {
  const std::vector<Point> points = SessionStream(64, 11);
  SopSession session(WindowType::kCount, Metric::kEuclidean, 64);
  // No queries for the first half.
  auto early = Drive(&session, points, 4, 0, 8);
  EXPECT_TRUE(early.empty());
  // A query added now still sees the retained history.
  const QueryId id = session.AddQuery(OutlierQuery(1.5, 2, 24, 4));
  auto late = Drive(&session, points, 4, 8, 9);
  ASSERT_EQ(late[id].size(), 1u);
  // Compare to the from-the-start run.
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.5, 2, 24, 4));
  for (const QueryResult& r : testing::ExpectedResults(w, points)) {
    if (r.boundary == 36) {
      EXPECT_EQ(late[id][0].outliers, r.outliers);
    }
  }
}

TEST(SopSessionTest, RebuildAfterHistoryTrimStartsMidStream) {
  // Regression: once history has been trimmed, a rebuild replays batches
  // whose first point has a non-zero sequence number; the fresh detector
  // must re-base its buffer instead of rejecting the batch.
  const std::vector<Point> points = SessionStream(400, 17);
  SopSession session(WindowType::kCount, Metric::kEuclidean,
                     /*history_window=*/32);
  session.AddQuery(OutlierQuery(1.5, 2, 16, 4));
  Drive(&session, points, 4, 0, 50);  // trims well past seq 0
  // Workload change forces a rebuild from trimmed history.
  const QueryId late = session.AddQuery(OutlierQuery(2.5, 3, 24, 8));
  auto results = Drive(&session, points, 4, 50, 100);
  EXPECT_TRUE(results.count(late));
  // The late query's emissions match a from-scratch run (its window of 24
  // is inside the 32-key retained history).
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.5, 2, 16, 4));
  w.AddQuery(OutlierQuery(2.5, 3, 24, 8));
  const std::vector<QueryResult> all_expected =
      testing::ExpectedResults(w, points);
  std::map<int64_t, const QueryResult*> expected;
  for (const QueryResult& r : all_expected) {
    if (r.query_index == 1 && r.boundary > 200) expected[r.boundary] = &r;
  }
  for (const SessionResult& r : results[late]) {
    ASSERT_TRUE(expected.count(r.boundary));
    EXPECT_EQ(r.outliers, expected[r.boundary]->outliers)
        << "boundary " << r.boundary;
  }
}

TEST(SopSessionTest, HistoryTrimmingBoundsMemory) {
  SopSession session(WindowType::kCount, Metric::kEuclidean, 32);
  session.AddQuery(OutlierQuery(1.5, 2, 16, 4));
  const std::vector<Point> points = SessionStream(400, 13);
  Drive(&session, points, 4, 0, 50);
  const size_t mid = session.MemoryBytes();
  Drive(&session, points, 4, 50, 100);
  const size_t end = session.MemoryBytes();
  // Memory stays in the same ballpark instead of growing with the stream.
  EXPECT_LT(end, mid * 3);
}

TEST(SopSessionTest, SinkOverloadMatchesVectorOverload) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.5, 2, 16, 4));
  w.AddQuery(OutlierQuery(3.0, 4, 24, 8));
  const std::vector<Point> points = SessionStream(96, 5);

  SopSession vector_session(WindowType::kCount, Metric::kEuclidean, 64);
  vector_session.AddQuery(w.query(0));
  vector_session.AddQuery(w.query(1));
  SopSession sink_session(WindowType::kCount, Metric::kEuclidean, 64);
  sink_session.AddQuery(w.query(0));
  sink_session.AddQuery(w.query(1));

  for (int64_t b = 0; b < 24; ++b) {
    std::vector<Point> batch(points.begin() + static_cast<size_t>(b * 4),
                             points.begin() + static_cast<size_t>((b + 1) * 4));
    const std::vector<SessionResult> expected =
        vector_session.Advance(batch, (b + 1) * 4);
    std::vector<SessionResult> sunk;
    sink_session.Advance(std::move(batch), (b + 1) * 4,
                         [&](const SessionResult& r) { sunk.push_back(r); });
    ASSERT_EQ(sunk.size(), expected.size()) << "batch " << b;
    for (size_t i = 0; i < sunk.size(); ++i) {
      EXPECT_EQ(sunk[i].query_id, expected[i].query_id);
      EXPECT_EQ(sunk[i].boundary, expected[i].boundary);
      EXPECT_EQ(sunk[i].outliers, expected[i].outliers);
    }
  }
}

TEST(SopSessionTest, RejectsInvalidQueries) {
  SopSession session(WindowType::kCount, Metric::kEuclidean, 32);
  EXPECT_DEATH(session.AddQuery(OutlierQuery(0.0, 2, 16, 4)), "r must");
  EXPECT_DEATH(session.AddQuery(OutlierQuery(1.0, 2, 16, 4, /*attrs=*/1)),
               "full attribute space");
}

}  // namespace
}  // namespace sop
