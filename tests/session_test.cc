// Tests for SopSession: dynamic query registration/removal over a live
// stream with history replay.

#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sop/common/random.h"
#include "sop/core/session.h"
#include "sop/detector/factory.h"
#include "sop/obs/metrics.h"
#include "test_util.h"

namespace sop {
namespace {

// Current value of a global obs counter (0 when never touched).
uint64_t CounterValue(const std::string& name) {
  const obs::Snapshot snap = obs::MetricsRegistry::Global().TakeSnapshot();
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

// Expected value of a global obs counter: under -DSOP_NO_OBS every
// instrumentation site compiles to nothing, so counters stay at zero.
constexpr uint64_t IfObs(uint64_t n) { return obs::kCompiledIn ? n : 0; }

std::vector<Point> SessionStream(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (Seq s = 0; s < n; ++s) {
    const double v = rng.Bernoulli(0.15) ? rng.UniformDouble(0, 40)
                                         : rng.Normal(12, 1.0);
    points.emplace_back(s, s, std::vector<double>{v});
  }
  return points;
}

// Drives a session over batches of `span` points; collects results per
// query id.
std::map<QueryId, std::vector<SessionResult>> Drive(
    SopSession* session, const std::vector<Point>& points, int64_t span,
    int64_t from_batch, int64_t to_batch) {
  std::map<QueryId, std::vector<SessionResult>> out;
  for (int64_t b = from_batch; b < to_batch; ++b) {
    std::vector<Point> batch(
        points.begin() + static_cast<size_t>(b * span),
        points.begin() + static_cast<size_t>((b + 1) * span));
    for (SessionResult& r : session->Advance(std::move(batch),
                                             (b + 1) * span)) {
      out[r.query_id].push_back(std::move(r));
    }
  }
  return out;
}

TEST(SopSessionTest, StaticWorkloadMatchesOracle) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.5, 2, 16, 4));
  w.AddQuery(OutlierQuery(3.0, 4, 24, 8));
  const std::vector<Point> points = SessionStream(96, 5);

  SopSession session(WindowType::kCount, Metric::kEuclidean, 64);
  const QueryId q0 = session.AddQuery(w.query(0));
  const QueryId q1 = session.AddQuery(w.query(1));
  auto by_id = Drive(&session, points, 4, 0, 24);

  const std::vector<QueryResult> expected =
      testing::ExpectedResults(w, points);
  std::map<QueryId, std::vector<const QueryResult*>> expected_by_id;
  for (const QueryResult& r : expected) {
    expected_by_id[r.query_index == 0 ? q0 : q1].push_back(&r);
  }
  for (const auto& [id, results] : by_id) {
    const auto& exp = expected_by_id[id];
    ASSERT_EQ(results.size(), exp.size());
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].boundary, exp[i]->boundary);
      EXPECT_EQ(results[i].outliers, exp[i]->outliers);
    }
  }
}

TEST(SopSessionTest, AddedQuerySeesReplayedHistory) {
  // Register q1 only after half the stream; thanks to replay its first
  // emission must equal what a from-the-start run would produce.
  const std::vector<Point> points = SessionStream(96, 7);
  const OutlierQuery q_initial(1.5, 2, 16, 4);
  const OutlierQuery q_late(2.5, 3, 32, 8);

  SopSession session(WindowType::kCount, Metric::kEuclidean, 64);
  session.AddQuery(q_initial);
  Drive(&session, points, 4, 0, 12);  // first 48 points
  const QueryId late_id = session.AddQuery(q_late);
  auto by_id = Drive(&session, points, 4, 12, 24);

  Workload full(WindowType::kCount);
  full.AddQuery(q_initial);
  full.AddQuery(q_late);
  const std::vector<QueryResult> expected =
      testing::ExpectedResults(full, points);
  std::vector<const QueryResult*> late_expected;
  for (const QueryResult& r : expected) {
    if (r.query_index == 1 && r.boundary > 48) late_expected.push_back(&r);
  }
  const auto& late_results = by_id[late_id];
  ASSERT_EQ(late_results.size(), late_expected.size());
  for (size_t i = 0; i < late_results.size(); ++i) {
    EXPECT_EQ(late_results[i].boundary, late_expected[i]->boundary);
    EXPECT_EQ(late_results[i].outliers, late_expected[i]->outliers)
        << "late query emission " << i;
  }
}

TEST(SopSessionTest, RemovedQueryStopsEmitting) {
  const std::vector<Point> points = SessionStream(64, 9);
  SopSession session(WindowType::kCount, Metric::kEuclidean, 64);
  const QueryId keep = session.AddQuery(OutlierQuery(1.5, 2, 16, 4));
  const QueryId gone = session.AddQuery(OutlierQuery(2.0, 3, 16, 4));
  auto first = Drive(&session, points, 4, 0, 8);
  EXPECT_TRUE(first.count(gone));
  ASSERT_TRUE(session.RemoveQuery(gone));
  EXPECT_FALSE(session.RemoveQuery(gone));  // already removed
  auto second = Drive(&session, points, 4, 8, 16);
  EXPECT_FALSE(second.count(gone));
  EXPECT_TRUE(second.count(keep));
  EXPECT_EQ(session.num_queries(), 1u);
}

TEST(SopSessionTest, EmptySessionEmitsNothingButRetainsHistory) {
  const std::vector<Point> points = SessionStream(64, 11);
  SopSession session(WindowType::kCount, Metric::kEuclidean, 64);
  // No queries for the first half.
  auto early = Drive(&session, points, 4, 0, 8);
  EXPECT_TRUE(early.empty());
  // A query added now still sees the retained history.
  const QueryId id = session.AddQuery(OutlierQuery(1.5, 2, 24, 4));
  auto late = Drive(&session, points, 4, 8, 9);
  ASSERT_EQ(late[id].size(), 1u);
  // Compare to the from-the-start run.
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.5, 2, 24, 4));
  for (const QueryResult& r : testing::ExpectedResults(w, points)) {
    if (r.boundary == 36) {
      EXPECT_EQ(late[id][0].outliers, r.outliers);
    }
  }
}

TEST(SopSessionTest, RebuildAfterHistoryTrimStartsMidStream) {
  // Regression: once history has been trimmed, a rebuild replays batches
  // whose first point has a non-zero sequence number; the fresh detector
  // must re-base its buffer instead of rejecting the batch.
  const std::vector<Point> points = SessionStream(400, 17);
  SopSession session(WindowType::kCount, Metric::kEuclidean,
                     /*history_window=*/32);
  session.AddQuery(OutlierQuery(1.5, 2, 16, 4));
  Drive(&session, points, 4, 0, 50);  // trims well past seq 0
  // Workload change forces a rebuild from trimmed history.
  const QueryId late = session.AddQuery(OutlierQuery(2.5, 3, 24, 8));
  auto results = Drive(&session, points, 4, 50, 100);
  EXPECT_TRUE(results.count(late));
  // The late query's emissions match a from-scratch run (its window of 24
  // is inside the 32-key retained history).
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.5, 2, 16, 4));
  w.AddQuery(OutlierQuery(2.5, 3, 24, 8));
  const std::vector<QueryResult> all_expected =
      testing::ExpectedResults(w, points);
  std::map<int64_t, const QueryResult*> expected;
  for (const QueryResult& r : all_expected) {
    if (r.query_index == 1 && r.boundary > 200) expected[r.boundary] = &r;
  }
  for (const SessionResult& r : results[late]) {
    ASSERT_TRUE(expected.count(r.boundary));
    EXPECT_EQ(r.outliers, expected[r.boundary]->outliers)
        << "boundary " << r.boundary;
  }
}

TEST(SopSessionTest, HistoryTrimmingBoundsMemory) {
  SopSession session(WindowType::kCount, Metric::kEuclidean, 32);
  session.AddQuery(OutlierQuery(1.5, 2, 16, 4));
  const std::vector<Point> points = SessionStream(400, 13);
  Drive(&session, points, 4, 0, 50);
  const size_t mid = session.MemoryBytes();
  Drive(&session, points, 4, 50, 100);
  const size_t end = session.MemoryBytes();
  // Memory stays in the same ballpark instead of growing with the stream.
  EXPECT_LT(end, mid * 3);
}

TEST(SopSessionTest, SinkOverloadMatchesVectorOverload) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.5, 2, 16, 4));
  w.AddQuery(OutlierQuery(3.0, 4, 24, 8));
  const std::vector<Point> points = SessionStream(96, 5);

  SopSession vector_session(WindowType::kCount, Metric::kEuclidean, 64);
  vector_session.AddQuery(w.query(0));
  vector_session.AddQuery(w.query(1));
  SopSession sink_session(WindowType::kCount, Metric::kEuclidean, 64);
  sink_session.AddQuery(w.query(0));
  sink_session.AddQuery(w.query(1));

  for (int64_t b = 0; b < 24; ++b) {
    std::vector<Point> batch(points.begin() + static_cast<size_t>(b * 4),
                             points.begin() + static_cast<size_t>((b + 1) * 4));
    const std::vector<SessionResult> expected =
        vector_session.Advance(batch, (b + 1) * 4);
    std::vector<SessionResult> sunk;
    sink_session.Advance(std::move(batch), (b + 1) * 4,
                         [&](const SessionResult& r) { sunk.push_back(r); });
    ASSERT_EQ(sunk.size(), expected.size()) << "batch " << b;
    for (size_t i = 0; i < sunk.size(); ++i) {
      EXPECT_EQ(sunk[i].query_id, expected[i].query_id);
      EXPECT_EQ(sunk[i].boundary, expected[i].boundary);
      EXPECT_EQ(sunk[i].outliers, expected[i].outliers);
    }
  }
}

// THE contract of the tiered change path (ISSUE acceptance criterion): on
// the default SopDetector, adding a query whose r is an existing layer
// (k within the envelope) and removing any query are overlay swaps — the
// session/replayed_points counter must not move.
TEST(SopSessionTest, OverlayChangesNeverReplayHistory) {
  obs::SetEnabled(true);
  obs::MetricsRegistry::Global().Reset();

  const std::vector<Point> points = SessionStream(128, 21);
  SopSession session(WindowType::kCount, Metric::kEuclidean, 64);
  const QueryId base = session.AddQuery(OutlierQuery(1.5, 3, 16, 4));
  Drive(&session, points, 4, 0, 12);
  EXPECT_EQ(session.change_stats().rebuilds, 1u);  // the initial compile

  const uint64_t replayed_before = CounterValue("session/replayed_points");
  const uint64_t replayed_stat_before =
      session.change_stats().replayed_points;

  // Add at the existing layer with k inside the envelope: overlay-only.
  const QueryId same_layer = session.AddQuery(OutlierQuery(1.5, 2, 8, 4));
  auto mid = Drive(&session, points, 4, 12, 20);
  EXPECT_TRUE(mid.count(same_layer));
  EXPECT_EQ(CounterValue("session/replayed_points"), replayed_before);
  EXPECT_EQ(session.change_stats().replayed_points, replayed_stat_before);
  EXPECT_EQ(session.change_stats().overlay_changes, 1u);

  // Any removal: overlay-only.
  ASSERT_TRUE(session.RemoveQuery(same_layer));
  auto late = Drive(&session, points, 4, 20, 28);
  EXPECT_FALSE(late.count(same_layer));
  EXPECT_TRUE(late.count(base));
  EXPECT_EQ(CounterValue("session/replayed_points"), replayed_before);
  EXPECT_EQ(session.change_stats().replayed_points, replayed_stat_before);
  EXPECT_EQ(session.change_stats().overlay_changes, 2u);
  EXPECT_EQ(CounterValue("session/change/overlay"), IfObs(2));
  EXPECT_EQ(session.change_stats().rebuilds, 1u);  // still just the compile
}

// A new r layer (or k beyond the envelope) is NOT overlay-safe — skyband
// pruning may already have discarded the evidence the new layer needs — so
// those adds must be realized as basis-extend rebuilds, and counted.
TEST(SopSessionTest, BasisGrowthForcesRebuildAndIsCounted) {
  obs::SetEnabled(true);
  obs::MetricsRegistry::Global().Reset();

  const std::vector<Point> points = SessionStream(128, 23);
  SopSession session(WindowType::kCount, Metric::kEuclidean, 64);
  session.AddQuery(OutlierQuery(1.5, 3, 16, 4));
  Drive(&session, points, 4, 0, 8);

  // New radius: new layer.
  session.AddQuery(OutlierQuery(2.5, 2, 16, 4));
  Drive(&session, points, 4, 8, 16);
  EXPECT_EQ(session.change_stats().basis_extends, 1u);
  EXPECT_EQ(session.change_stats().rebuilds, 2u);

  // Existing radius but k above the compiled envelope.
  session.AddQuery(OutlierQuery(1.5, 7, 16, 4));
  Drive(&session, points, 4, 16, 24);
  EXPECT_EQ(session.change_stats().basis_extends, 2u);
  EXPECT_EQ(session.change_stats().rebuilds, 3u);
  EXPECT_EQ(CounterValue("session/change/basis_extend"), IfObs(2));
  EXPECT_GT(session.change_stats().replayed_points, 0u);
  EXPECT_EQ(session.change_stats().overlay_changes, 0u);
}

// Under the exact paper basis (no headroom) removals — and re-adds of
// queries the basis was compiled for — are still overlay swaps.
TEST(SopSessionTest, ExactBasisStillOverlaysRemovalsAndReAdds) {
  const std::vector<Point> points = SessionStream(128, 29);
  SopSession session(WindowType::kCount, Metric::kEuclidean, 64);
  session.SetBasisHeadroom(PlanHeadroom());  // exact basis
  session.AddQuery(OutlierQuery(1.5, 2, 16, 4));
  const QueryId churned = session.AddQuery(OutlierQuery(3.0, 4, 24, 8));
  Drive(&session, points, 4, 0, 12);

  ASSERT_TRUE(session.RemoveQuery(churned));
  Drive(&session, points, 4, 12, 16);
  EXPECT_EQ(session.change_stats().overlay_changes, 1u);

  session.AddQuery(OutlierQuery(3.0, 4, 24, 8));  // was a compiled demand
  Drive(&session, points, 4, 16, 20);
  EXPECT_EQ(session.change_stats().overlay_changes, 2u);
  EXPECT_EQ(session.change_stats().rebuilds, 1u);
  EXPECT_EQ(session.change_stats().replayed_points, 0u);
}

// Regression for the old Rebuild() boundary dance: an AddQuery landing
// exactly on an emission boundary must not double-advance the in-flight
// batch. Emissions after the change must be bit-identical to a
// from-the-start run — on the default SopDetector path (overlay swap) and
// on a DetectorBuilder hook (rebuild-and-replay) alike.
TEST(SopSessionTest, AddOnEmissionBoundaryEmitsExactlyOnce) {
  const std::vector<Point> points = SessionStream(96, 31);
  const OutlierQuery q_initial(1.5, 3, 16, 4);
  const OutlierQuery q_late(1.5, 2, 16, 4);  // same layer: overlay path

  Workload full(WindowType::kCount);
  full.AddQuery(q_initial);
  full.AddQuery(q_late);
  const std::vector<QueryResult> expected =
      testing::ExpectedResults(full, points);

  for (const bool use_builder : {false, true}) {
    SCOPED_TRACE(use_builder ? "builder (rebuild-and-replay)"
                             : "default (overlay)");
    SopSession session(WindowType::kCount, Metric::kEuclidean, 64);
    if (use_builder) {
      session.SetDetectorBuilder([](const Workload& w) {
        return CreateDetector("naive", w);
      });
    }
    const QueryId initial_id = session.AddQuery(q_initial);
    Drive(&session, points, 4, 0, 12);
    // Boundary 48 is an emission boundary of both queries (win 16, slide
    // 4): the change lands exactly where the old code's replay-to-previous
    // -boundary dance was most suspect.
    const QueryId late_id = session.AddQuery(q_late);
    auto after = Drive(&session, points, 4, 12, 24);

    std::map<int64_t, const QueryResult*> expected_late, expected_initial;
    for (const QueryResult& r : expected) {
      if (r.boundary <= 48) continue;
      (r.query_index == 0 ? expected_initial : expected_late)[r.boundary] =
          &r;
    }
    ASSERT_EQ(after[late_id].size(), expected_late.size());
    for (const SessionResult& r : after[late_id]) {
      ASSERT_TRUE(expected_late.count(r.boundary)) << r.boundary;
      EXPECT_EQ(r.outliers, expected_late[r.boundary]->outliers)
          << "late @ " << r.boundary;
    }
    ASSERT_EQ(after[initial_id].size(), expected_initial.size());
    for (const SessionResult& r : after[initial_id]) {
      ASSERT_TRUE(expected_initial.count(r.boundary)) << r.boundary;
      EXPECT_EQ(r.outliers, expected_initial[r.boundary]->outliers)
          << "initial @ " << r.boundary;
    }
  }
}

// A restored session folds the saved basis coverage into its next rebuild,
// so a change that was overlay-only before the restart stays overlay-only
// after it.
TEST(SopSessionTest, RestoredSessionKeepsOverlayCoverage) {
  const std::vector<Point> points = SessionStream(128, 37);
  SopSession saved(WindowType::kCount, Metric::kEuclidean, 64);
  saved.AddQuery(OutlierQuery(1.5, 3, 16, 4));
  Drive(&saved, points, 4, 0, 12);
  const std::string blob = saved.SaveState();

  SopSession restored(WindowType::kCount, Metric::kEuclidean, 64);
  std::string error;
  ASSERT_TRUE(restored.LoadState(blob, &error)) << error;
  // First batch after restore: the lazy rebuild (+ history replay).
  Drive(&restored, points, 4, 12, 13);
  EXPECT_EQ(restored.change_stats().rebuilds, 1u);
  const uint64_t replayed = restored.change_stats().replayed_points;
  EXPECT_GT(replayed, 0u);

  // Same layer, k inside the restored envelope: still an overlay swap.
  const QueryId added = restored.AddQuery(OutlierQuery(1.5, 2, 8, 4));
  auto results = Drive(&restored, points, 4, 13, 20);
  EXPECT_TRUE(results.count(added));
  EXPECT_EQ(restored.change_stats().overlay_changes, 1u);
  EXPECT_EQ(restored.change_stats().rebuilds, 1u);
  EXPECT_EQ(restored.change_stats().replayed_points, replayed);
}

TEST(SopSessionTest, RejectsInvalidQueries) {
  SopSession session(WindowType::kCount, Metric::kEuclidean, 32);
  EXPECT_DEATH(session.AddQuery(OutlierQuery(0.0, 2, 16, 4)), "r must");
  EXPECT_DEATH(session.AddQuery(OutlierQuery(1.0, 2, 16, 4, /*attrs=*/1)),
               "full attribute space");
}

}  // namespace
}  // namespace sop
