// Tests for the data and workload generators.

#include <algorithm>
#include <set>

#include "gtest/gtest.h"
#include "sop/gen/stt.h"
#include "sop/gen/synthetic.h"
#include "sop/gen/workload_gen.h"

namespace sop {
namespace {

TEST(SyntheticGenTest, DeterministicForSeed) {
  gen::SyntheticOptions options;
  options.seed = 99;
  const std::vector<Point> a = gen::GenerateSynthetic(500, options);
  const std::vector<Point> b = gen::GenerateSynthetic(500, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].values, b[i].values);
    EXPECT_EQ(a[i].time, b[i].time);
  }
}

TEST(SyntheticGenTest, ShapeAndTimestamps) {
  gen::SyntheticOptions options;
  options.dimensions = 3;
  options.time_step = 5;
  const std::vector<Point> points = gen::GenerateSynthetic(100, options);
  ASSERT_EQ(points.size(), 100u);
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].values.size(), 3u);
    EXPECT_EQ(points[i].time, static_cast<Timestamp>(i) * 5);
  }
}

TEST(SyntheticGenTest, MostPointsAreClustered) {
  gen::SyntheticOptions options;
  options.outlier_rate = 0.05;
  options.cluster_stddev = 100.0;
  const std::vector<Point> points = gen::GenerateSynthetic(4000, options);
  // Inliers sit within a few stddevs of some cluster center; count points
  // with a same-cluster-scale neighbor density by proxy: the fraction of
  // points whose nearest neighbor is within 3 stddevs must be large.
  int lonely = 0;
  for (size_t i = 0; i < 400; ++i) {  // sample
    double nearest = 1e18;
    for (size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      double sum = 0;
      for (size_t d = 0; d < points[i].values.size(); ++d) {
        const double diff = points[i].values[d] - points[j].values[d];
        sum += diff * diff;
      }
      nearest = std::min(nearest, sum);
    }
    if (nearest > 300.0 * 300.0) ++lonely;
  }
  EXPECT_LT(lonely, 60);  // ~ outlier rate, far below half
}

TEST(SyntheticGenTest, SourceMatchesMaterialized) {
  gen::SyntheticOptions options;
  options.seed = 3;
  gen::SyntheticSource source(50, options);
  const std::vector<Point> expected = gen::GenerateSynthetic(50, options);
  Point p;
  size_t i = 0;
  while (source.Next(&p)) {
    ASSERT_LT(i, expected.size());
    EXPECT_EQ(p.values, expected[i].values);
    ++i;
  }
  EXPECT_EQ(i, expected.size());
}

TEST(SttGenTest, SchemaAndMonotoneTime) {
  gen::SttOptions options;
  const std::vector<Point> trades = gen::GenerateStt(2000, options);
  ASSERT_EQ(trades.size(), 2000u);
  for (size_t i = 0; i < trades.size(); ++i) {
    EXPECT_EQ(trades[i].values.size(), 2u);
    EXPECT_GE(trades[i].values[0], 0.0);
    EXPECT_LE(trades[i].values[0], options.value_scale);
    EXPECT_GE(trades[i].values[1], 0.0);
    EXPECT_LE(trades[i].values[1], options.value_scale);
    if (i > 0) {
      EXPECT_GE(trades[i].time, trades[i - 1].time);
    }
    EXPECT_LE(trades[i].time, options.session_seconds);
  }
}

TEST(SttGenTest, SymbolAttributeOptional) {
  gen::SttOptions options;
  options.include_symbol_attribute = true;
  const std::vector<Point> trades = gen::GenerateStt(100, options);
  for (const Point& t : trades) EXPECT_EQ(t.values.size(), 3u);
}

TEST(SttGenTest, DeterministicForSeed) {
  gen::SttOptions options;
  options.seed = 1234;
  const std::vector<Point> a = gen::GenerateStt(300, options);
  const std::vector<Point> b = gen::GenerateStt(300, options);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].values, b[i].values);
}

TEST(WorkloadGenTest, CaseParsing) {
  gen::WorkloadCase c;
  EXPECT_TRUE(gen::ParseWorkloadCase("A", &c));
  EXPECT_EQ(c, gen::WorkloadCase::kA);
  EXPECT_TRUE(gen::ParseWorkloadCase("G", &c));
  EXPECT_EQ(c, gen::WorkloadCase::kG);
  EXPECT_FALSE(gen::ParseWorkloadCase("H", &c));
  EXPECT_FALSE(gen::ParseWorkloadCase("AB", &c));
}

TEST(WorkloadGenTest, FixedAndVaryingParametersPerCase) {
  gen::WorkloadGenOptions options;
  options.seed = 5;
  const Workload a = gen::GenerateWorkload(gen::WorkloadCase::kA, 50,
                                           WindowType::kCount, options);
  std::set<double> rs;
  for (const OutlierQuery& q : a.queries()) {
    rs.insert(q.r);
    EXPECT_EQ(q.k, options.k_fixed);
    EXPECT_EQ(q.win, options.win_fixed);
    EXPECT_EQ(q.slide, options.slide_fixed);
    EXPECT_GE(q.r, options.r_lo);
    EXPECT_LT(q.r, options.r_hi);
  }
  EXPECT_GT(rs.size(), 10u);

  const Workload g = gen::GenerateWorkload(gen::WorkloadCase::kG, 50,
                                           WindowType::kCount, options);
  std::set<int64_t> ks, wins, slides;
  for (const OutlierQuery& q : g.queries()) {
    ks.insert(q.k);
    wins.insert(q.win);
    slides.insert(q.slide);
    EXPECT_EQ(q.win % options.slide_quantum, 0);
    EXPECT_EQ(q.slide % options.slide_quantum, 0);
    EXPECT_GE(q.k, options.k_lo);
    EXPECT_LT(q.k, options.k_hi);
  }
  EXPECT_GT(ks.size(), 10u);
  EXPECT_GT(wins.size(), 10u);
  EXPECT_GT(slides.size(), 10u);
}

TEST(WorkloadGenTest, GeneratedWorkloadsValidate) {
  gen::WorkloadGenOptions options;
  for (const gen::WorkloadCase c :
       {gen::WorkloadCase::kA, gen::WorkloadCase::kB, gen::WorkloadCase::kC,
        gen::WorkloadCase::kD, gen::WorkloadCase::kE, gen::WorkloadCase::kF,
        gen::WorkloadCase::kG}) {
    const Workload w =
        gen::GenerateWorkload(c, 20, WindowType::kCount, options);
    EXPECT_TRUE(w.Validate().empty());
    EXPECT_EQ(w.num_queries(), 20u);
  }
}

}  // namespace
}  // namespace sop
