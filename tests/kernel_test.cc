// Columnar store + batch distance kernel coverage.
//
// Three layers of proof that the kernel refactor cannot change answers:
//   1. ColumnStore units: the ring mirror (slots, recycling, growth,
//      wraparound, restore re-basing) holds exactly the alive points.
//   2. A seed-logged equivalence fuzz: every kernel entry point, backend
//      (scalar and — when the CPU has it — AVX2), metric, and subspace
//      shape must return distances bit-identical to the legacy per-pair
//      DistanceFn, including degenerate 0/1-candidate batches and batches
//      spanning the ring seam.
//   3. Emissions bit-identity: every KnownDetectorNames() detector, over
//      both window types, emits identical outliers under every supported
//      backend, and matches the brute-force oracle.
//
// Fuzz budget/seed follow the suite convention: SOP_FUZZ_MS extends the
// time budget (check.sh runs ~2s), SOP_FUZZ_SEED pins the seed, and the
// seed is printed so failures replay exactly.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sop/common/column_store.h"
#include "sop/common/dist_kernel.h"
#include "sop/common/distance.h"
#include "sop/common/random.h"
#include "sop/detector/driver.h"
#include "sop/detector/factory.h"
#include "sop/index/grid.h"
#include "sop/stream/stream_buffer.h"
#include "test_util.h"

namespace sop {
namespace {

Point MakePoint(Seq seq, size_t dims, Rng* rng) {
  std::vector<double> values(dims);
  for (double& v : values) v = rng->UniformDouble(-3.0, 3.0);
  return Point(seq, static_cast<Timestamp>(seq), std::move(values));
}

// Restores the scalar backend even if a test fails mid-way.
struct ScopedBackend {
  explicit ScopedBackend(KernelBackend b) { SetKernelBackend(b); }
  ~ScopedBackend() { SetKernelBackend(KernelBackend::kScalar); }
};

TEST(ColumnStoreTest, AppendExpireAndSlots) {
  ColumnStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.capacity(), 0u);

  Rng rng(7);
  std::vector<Point> rows;
  for (Seq s = 0; s < 50; ++s) {
    rows.push_back(MakePoint(s, 3, &rng));
    store.Append(rows.back());
  }
  EXPECT_EQ(store.size(), 50u);
  EXPECT_EQ(store.num_dims(), 3u);
  EXPECT_EQ(store.first_seq(), 0);
  EXPECT_EQ(store.next_seq(), 50);
  for (Seq s = 0; s < 50; ++s) {
    const size_t slot = store.SlotOf(s);
    EXPECT_EQ(store.seq_column()[slot], s);
    EXPECT_EQ(store.time_column()[slot], static_cast<Timestamp>(s));
    for (size_t d = 0; d < 3; ++d) {
      EXPECT_EQ(store.Column(d)[slot], rows[static_cast<size_t>(s)].values[d]);
    }
  }

  store.PopFront(20);
  EXPECT_EQ(store.first_seq(), 20);
  EXPECT_EQ(store.size(), 30u);
  EXPECT_FALSE(store.Contains(19));
  EXPECT_TRUE(store.Contains(20));
  EXPECT_GT(store.MemoryBytes(), 0u);
}

TEST(ColumnStoreTest, GrowthRescattersAndRingWraps) {
  // Drive the window far past the initial capacity with interleaved
  // expiry, so slots wrap the ring seam and capacity doubles re-scatter
  // live points. Verify every alive value against the row copy throughout.
  ColumnStore store;
  Rng rng(11);
  std::vector<Point> rows;  // rows[s] = point with seq s
  Seq first = 0;
  for (Seq s = 0; s < 1000; ++s) {
    rows.push_back(MakePoint(s, 2, &rng));
    store.Append(rows.back());
    if (s % 3 == 2 && first + 40 < s) {
      store.PopFront(2);
      first += 2;
    }
  }
  EXPECT_EQ(store.first_seq(), first);
  EXPECT_EQ(store.next_seq(), 1000);
  for (Seq s = first; s < 1000; ++s) {
    const size_t slot = store.SlotOf(s);
    EXPECT_EQ(store.seq_column()[slot], s);
    for (size_t d = 0; d < 2; ++d) {
      EXPECT_EQ(store.Column(d)[slot], rows[static_cast<size_t>(s)].values[d]);
    }
  }
}

TEST(ColumnStoreTest, ResetToRebasesEmptyStore) {
  ColumnStore store;
  Rng rng(3);
  store.Append(MakePoint(0, 2, &rng));
  store.PopFront(1);
  store.ResetTo(500);
  EXPECT_EQ(store.first_seq(), 500);
  store.Append(MakePoint(500, 2, &rng));
  EXPECT_EQ(store.seq_column()[store.SlotOf(500)], 500);
}

TEST(ColumnStoreTest, StreamBufferKeepsColumnsInSync) {
  StreamBuffer buffer(WindowType::kCount);
  Rng rng(5);
  for (Seq s = 0; s < 100; ++s) buffer.Append(MakePoint(s, 2, &rng));
  buffer.ExpireBefore(40);
  const ColumnStore& cols = buffer.columns();
  EXPECT_EQ(cols.first_seq(), buffer.first_seq());
  EXPECT_EQ(cols.next_seq(), buffer.next_seq());
  for (Seq s = buffer.first_seq(); s < buffer.next_seq(); ++s) {
    const Point& p = buffer.At(s);
    const size_t slot = cols.SlotOf(s);
    EXPECT_EQ(cols.time_column()[slot], p.time);
    for (size_t d = 0; d < 2; ++d) EXPECT_EQ(cols.Column(d)[slot], p.values[d]);
  }
}

TEST(KernelBackendTest, ParseAndSelect) {
  KernelBackend b = KernelBackend::kAvx2;
  EXPECT_TRUE(ParseKernelBackend("scalar", &b));
  EXPECT_EQ(b, KernelBackend::kScalar);
  EXPECT_TRUE(ParseKernelBackend("auto", &b));
  EXPECT_TRUE(KernelBackendSupported(b));
  EXPECT_FALSE(ParseKernelBackend("sse9", &b));
  EXPECT_STREQ(KernelBackendName(KernelBackend::kScalar), "scalar");
  EXPECT_STREQ(KernelBackendName(KernelBackend::kAvx2), "avx2");

  EXPECT_TRUE(KernelBackendSupported(KernelBackend::kScalar));
  EXPECT_TRUE(SetKernelBackend(KernelBackend::kScalar));
  const bool avx2 = KernelBackendSupported(KernelBackend::kAvx2);
  std::fprintf(stderr, "[ info ] avx2 backend %s on this machine\n",
               avx2 ? "available" : "unavailable");
  EXPECT_EQ(ParseKernelBackend("avx2", &b), avx2);
  if (avx2) {
    ScopedBackend guard(KernelBackend::kAvx2);
    EXPECT_EQ(ActiveKernelBackend(), KernelBackend::kAvx2);
  } else {
    EXPECT_FALSE(SetKernelBackend(KernelBackend::kAvx2));
    EXPECT_EQ(ActiveKernelBackend(), KernelBackend::kScalar);
  }
  EXPECT_EQ(ActiveKernelBackend(), KernelBackend::kScalar);
}

// One fuzz round: builds a random window, compares every kernel entry
// point against the legacy per-pair DistanceFn, on every supported
// backend. All comparisons are exact (==): the contract is bit-identity.
void FuzzKernelOnce(Rng* rng) {
  const size_t dims = 1 + rng->NextBelow(6);
  const Metric metric =
      rng->NextBelow(2) == 0 ? Metric::kEuclidean : Metric::kManhattan;
  // Subspace: full space, or a random sorted strict subset.
  std::vector<int> attrs;
  if (dims > 1 && rng->NextBelow(2) == 0) {
    for (size_t d = 0; d < dims; ++d) {
      if (rng->NextBelow(2) == 0) attrs.push_back(static_cast<int>(d));
    }
    if (attrs.empty()) attrs.push_back(static_cast<int>(rng->NextBelow(dims)));
  }
  const DistanceFn dist(metric, attrs);
  const DistanceKernel kernel = dist.MakeKernel();

  // A window with random churn so batches span capacity growth and the
  // ring seam. Occasionally duplicate coordinates exactly (distance 0 and
  // ties on the r threshold).
  ColumnStore store;
  std::vector<Point> rows;
  Seq first = 0, next = 0;
  const size_t target = 1 + rng->NextBelow(300);
  while (static_cast<size_t>(next - first) < target) {
    Point p = MakePoint(next, dims, rng);
    if (!rows.empty() && rng->NextBelow(16) == 0) {
      p.values = rows.back().values;  // exact duplicate
    }
    rows.push_back(p);
    store.Append(p);
    ++next;
    if (rng->NextBelow(8) == 0 && next - first > 4) {
      const size_t drop = 1 + rng->NextBelow(3);
      store.PopFront(drop);
      first += static_cast<Seq>(drop);
    }
  }
  const Point probe = MakePoint(next, dims, rng);
  auto row_of = [&](Seq s) -> const Point& {
    return rows[static_cast<size_t>(s)];
  };

  // Batch of random alive seqs in random order (possibly empty).
  const size_t alive = static_cast<size_t>(next - first);
  std::vector<Seq> batch;
  for (Seq s = first; s < next; ++s) {
    if (rng->NextBelow(3) != 0) batch.push_back(s);
  }
  for (size_t i = batch.size(); i > 1; --i) {
    std::swap(batch[i - 1], batch[rng->NextBelow(i)]);
  }
  if (rng->NextBelow(8) == 0) batch.resize(std::min<size_t>(batch.size(), 1));

  std::vector<double> expected(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    expected[i] = dist(probe, row_of(batch[i]));
  }

  const bool avx2 = KernelBackendSupported(KernelBackend::kAvx2);
  for (int pass = 0; pass < (avx2 ? 2 : 1); ++pass) {
    ScopedBackend guard(pass == 0 ? KernelBackend::kScalar
                                  : KernelBackend::kAvx2);
    SCOPED_TRACE(std::string("backend ") +
                 KernelBackendName(ActiveKernelBackend()));

    std::vector<double> out(batch.size(), -1.0);
    kernel.BatchDist(store, probe, batch.data(), batch.size(), out.data());
    ASSERT_EQ(out, expected);

    // Contiguous range form over a random alive subrange.
    const Seq lo = first + static_cast<Seq>(rng->NextBelow(alive));
    const size_t max_n = static_cast<size_t>(next - lo);
    const size_t n = rng->NextBelow(max_n + 1);
    std::vector<double> range_out(n, -1.0);
    std::vector<double> range_expected(n);
    for (size_t i = 0; i < n; ++i) {
      range_expected[i] = dist(probe, row_of(lo + static_cast<Seq>(i)));
    }
    kernel.BatchDistRange(store, probe, lo, n, range_out.data());
    ASSERT_EQ(range_out, range_expected);

    // Range confirmation: radius drawn near the observed distances so both
    // sides of the threshold occur; ties land exactly on a computed value.
    double r = 0.0;
    if (!expected.empty()) {
      r = expected[rng->NextBelow(expected.size())];
      if (rng->NextBelow(2) == 0) r *= rng->UniformDouble(0.5, 1.5);
    }
    const size_t count =
        kernel.CountWithinR(store, probe, batch.data(), batch.size(), r);
    std::vector<Seq> part = batch;
    std::vector<double> part_dists(part.size());
    const size_t hits = kernel.PartitionWithinR(
        store, probe, part.data(), part.size(), r, part_dists.data());
    std::vector<Seq> expected_hits;
    std::vector<double> expected_hit_dists;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (expected[i] <= r) {
        expected_hits.push_back(batch[i]);
        expected_hit_dists.push_back(expected[i]);
      }
    }
    ASSERT_EQ(count, expected_hits.size());
    ASSERT_EQ(hits, expected_hits.size());
    ASSERT_EQ(std::vector<Seq>(part.begin(),
                               part.begin() + static_cast<long>(hits)),
              expected_hits);
    ASSERT_EQ(std::vector<double>(
                  part_dists.begin(),
                  part_dists.begin() + static_cast<long>(hits)),
              expected_hit_dists);
  }
}

TEST(KernelEquivalenceFuzz, MatchesLegacyPerPairBitExactly) {
  const testing::FuzzParams fuzz =
      testing::AnnouncedFuzzParams("kernel equivalence", 300);
  const uint64_t seed = fuzz.seed;
  const int64_t budget_ms = fuzz.budget_ms;
  Rng rng(seed);
  SCOPED_TRACE("seed " + std::to_string(seed));
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  int rounds = 0;
  do {
    FuzzKernelOnce(&rng);
    if (::testing::Test::HasFatalFailure()) return;
    ++rounds;
  } while (std::chrono::steady_clock::now() < deadline);
  std::fprintf(stderr, "[ fuzz ] %d rounds\n", rounds);
}

TEST(KernelEquivalence, DegenerateBatches) {
  const DistanceFn dist(Metric::kEuclidean);
  const DistanceKernel kernel = dist.MakeKernel();
  ColumnStore store;
  Rng rng(42);
  const Point only = MakePoint(0, 2, &rng);
  store.Append(only);
  const Point probe = MakePoint(1, 2, &rng);

  // Empty batch: no output touched.
  double sentinel = -7.0;
  kernel.BatchDist(store, probe, nullptr, 0, &sentinel);
  kernel.BatchDistRange(store, probe, 0, 0, &sentinel);
  EXPECT_EQ(sentinel, -7.0);
  EXPECT_EQ(kernel.CountWithinR(store, probe, nullptr, 0, 1.0), 0u);
  EXPECT_EQ(kernel.PartitionWithinR(store, probe, nullptr, 0, 1.0, &sentinel),
            0u);

  // One-candidate batch.
  const Seq one[] = {0};
  double out = -1.0;
  kernel.BatchDist(store, probe, one, 1, &out);
  EXPECT_EQ(out, dist(probe, only));

  // Zero-distance probe (probe identical to the stored point).
  kernel.BatchDist(store, only, one, 1, &out);
  EXPECT_EQ(out, 0.0);
}

TEST(GridScanState, CachedSpanTracksRadiusChanges) {
  // The hoisted per-query scan state must not leak between probes with
  // different radii: alternate two radii against the same index and check
  // the candidate supersets stay exact.
  const DistanceFn dist(Metric::kEuclidean);
  GridIndex grid(dist, /*cell_size=*/0.5);
  StreamBuffer buffer(WindowType::kCount);
  Rng rng(99);
  for (Seq s = 0; s < 200; ++s) {
    buffer.Append(MakePoint(s, 2, &rng));
    grid.Insert(s, buffer.At(s));
  }
  std::vector<Seq> got;
  for (int i = 0; i < 20; ++i) {
    const double r = (i % 2 == 0) ? 0.4 : 2.5;
    const Point probe = MakePoint(200 + i, 2, &rng);
    grid.CollectCandidates(probe, r, &got);
    std::sort(got.begin(), got.end());
    for (Seq s = 0; s < 200; ++s) {
      if (dist(probe, buffer.At(s)) <= r) {
        EXPECT_TRUE(std::binary_search(got.begin(), got.end(), s))
            << "r=" << r << " missed neighbor seq " << s;
      }
    }
  }
}

Workload EmissionsWorkload(WindowType type) {
  Workload w(type);
  w.AddQuery(OutlierQuery(1.0, 3, 32, 8));
  w.AddQuery(OutlierQuery(2.0, 5, 16, 8));
  w.AddQuery(OutlierQuery(0.6, 2, 24, 8));
  return w;
}

std::vector<Point> EmissionsStream(size_t n) {
  Rng rng(20160626);
  std::vector<Point> points;
  points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // Mostly clustered with occasional far outliers, in 2-D.
    std::vector<double> v(2);
    if (rng.NextBelow(12) == 0) {
      v[0] = rng.UniformDouble(-40.0, 40.0);
      v[1] = rng.UniformDouble(-40.0, 40.0);
    } else {
      v[0] = rng.Normal(0.0, 1.0);
      v[1] = rng.Normal(0.0, 1.0);
    }
    points.emplace_back(static_cast<Seq>(i), static_cast<Timestamp>(i),
                        std::move(v));
  }
  return points;
}

TEST(KernelEmissions, BitIdenticalAcrossBackendsAndOracle) {
  const std::vector<Point> points = EmissionsStream(400);
  const bool avx2 = KernelBackendSupported(KernelBackend::kAvx2);
  for (const std::string& name : KnownDetectorNames()) {
    for (const WindowType type : {WindowType::kCount, WindowType::kTime}) {
      const Workload w = EmissionsWorkload(type);
      const std::string label =
          name + (type == WindowType::kCount ? "/count" : "/time");
      SCOPED_TRACE(label);

      SetKernelBackend(KernelBackend::kScalar);
      auto detector = CreateDetector(name, w);
      const std::vector<QueryResult> scalar_results =
          CollectResults(w, points, detector.get());
      testing::ExpectSameResults(testing::ExpectedResults(w, points),
                                 scalar_results, label + "/scalar-vs-oracle");

      if (avx2) {
        ScopedBackend guard(KernelBackend::kAvx2);
        auto avx2_detector = CreateDetector(name, w);
        const std::vector<QueryResult> avx2_results =
            CollectResults(w, points, avx2_detector.get());
        testing::ExpectSameResults(scalar_results, avx2_results,
                                   label + "/avx2-vs-scalar");
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace sop
