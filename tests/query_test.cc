// Unit tests for sop/query: queries, workloads, and the compiled plan
// (normalized distance layers, k-groups, Def-6 table, safety staircase,
// swift-query parameters).

#include "gtest/gtest.h"
#include "sop/query/plan.h"
#include "sop/query/query.h"
#include "sop/query/workload.h"

namespace sop {
namespace {

Workload MakeWorkload(std::vector<OutlierQuery> queries) {
  Workload w(WindowType::kCount);
  for (const OutlierQuery& q : queries) w.AddQuery(q);
  return w;
}

TEST(QueryTest, ToStringMentionsParameters) {
  const OutlierQuery q(1.5, 3, 100, 10);
  const std::string s = q.ToString();
  EXPECT_NE(s.find("r=1.5"), std::string::npos);
  EXPECT_NE(s.find("k=3"), std::string::npos);
  EXPECT_NE(s.find("win=100"), std::string::npos);
  EXPECT_NE(s.find("slide=10"), std::string::npos);
}

TEST(WorkloadTest, ValidateCatchesBadParameters) {
  EXPECT_FALSE(Workload().Validate().empty());  // no queries
  EXPECT_FALSE(
      MakeWorkload({OutlierQuery(0.0, 3, 100, 10)}).Validate().empty());
  EXPECT_FALSE(
      MakeWorkload({OutlierQuery(1.0, 0, 100, 10)}).Validate().empty());
  EXPECT_FALSE(
      MakeWorkload({OutlierQuery(1.0, 3, 0, 10)}).Validate().empty());
  EXPECT_FALSE(
      MakeWorkload({OutlierQuery(1.0, 3, 100, 0)}).Validate().empty());
  EXPECT_FALSE(
      MakeWorkload({OutlierQuery(1.0, 3, 100, 10, /*attribute_set=*/5)})
          .Validate()
          .empty());
  EXPECT_TRUE(
      MakeWorkload({OutlierQuery(1.0, 3, 100, 10)}).Validate().empty());
}

TEST(WorkloadTest, AggregatesAndGcd) {
  Workload w = MakeWorkload({OutlierQuery(1.0, 3, 100, 10),
                             OutlierQuery(2.0, 7, 400, 25),
                             OutlierQuery(0.5, 5, 200, 15)});
  EXPECT_EQ(w.MaxWindow(), 400);
  EXPECT_EQ(w.MaxK(), 7);
  EXPECT_EQ(w.SlideGcd(), 5);
}

TEST(WorkloadTest, AttributeSetsAndDistance) {
  Workload w(WindowType::kCount);
  const int set = w.AddAttributeSet({0, 2});
  EXPECT_EQ(set, 1);
  w.AddQuery(OutlierQuery(1.0, 3, 100, 10, set));
  w.AddQuery(OutlierQuery(1.0, 3, 100, 10, 0));
  const DistanceFn sub = w.MakeDistanceFn(0);
  EXPECT_EQ(sub.attributes(), (std::vector<int>{0, 2}));
  const DistanceFn full = w.MakeDistanceFn(1);
  EXPECT_TRUE(full.attributes().empty());
}

TEST(PlanTest, LayersAreSortedUniqueRs) {
  WorkloadPlan plan(MakeWorkload({OutlierQuery(3.0, 2, 100, 10),
                                  OutlierQuery(1.0, 2, 100, 10),
                                  OutlierQuery(3.0, 4, 100, 10),
                                  OutlierQuery(2.0, 2, 100, 10)}));
  EXPECT_EQ(plan.num_layers(), 3);
  EXPECT_DOUBLE_EQ(plan.r_of_layer(1), 1.0);
  EXPECT_DOUBLE_EQ(plan.r_of_layer(2), 2.0);
  EXPECT_DOUBLE_EQ(plan.r_of_layer(3), 3.0);
  EXPECT_DOUBLE_EQ(plan.r_min(), 1.0);
  EXPECT_DOUBLE_EQ(plan.r_max(), 3.0);
}

TEST(PlanTest, NormalizedDistancePerDef4) {
  // Paper Def. 4: dist = m+1 when r_m < dist_o <= r_{m+1}.
  WorkloadPlan plan(MakeWorkload({OutlierQuery(1.0, 3, 100, 10),
                                  OutlierQuery(2.0, 3, 100, 10),
                                  OutlierQuery(3.0, 3, 100, 10)}));
  EXPECT_EQ(plan.LayerOfDistance(0.0), 1);
  EXPECT_EQ(plan.LayerOfDistance(1.0), 1);  // inclusive upper bound
  EXPECT_EQ(plan.LayerOfDistance(1.5), 2);
  EXPECT_EQ(plan.LayerOfDistance(2.0), 2);
  EXPECT_EQ(plan.LayerOfDistance(3.0), 3);
  EXPECT_EQ(plan.LayerOfDistance(3.1), 4);  // beyond every r: not a neighbor
}

TEST(PlanTest, GroupsAndQueryCoordinates) {
  Workload w = MakeWorkload({OutlierQuery(2.0, 5, 100, 10),
                             OutlierQuery(1.0, 2, 100, 10),
                             OutlierQuery(3.0, 2, 100, 10)});
  WorkloadPlan plan(w);
  EXPECT_EQ(plan.num_groups(), 2);
  EXPECT_EQ(plan.k_of_group(0), 2);
  EXPECT_EQ(plan.k_of_group(1), 5);
  EXPECT_EQ(plan.k_max(), 5);
  EXPECT_EQ(plan.group_of_query(0), 1);
  EXPECT_EQ(plan.group_of_query(1), 0);
  EXPECT_EQ(plan.layer_of_query(0), 2);
  EXPECT_EQ(plan.layer_of_query(1), 1);
  EXPECT_EQ(plan.layer_of_query(2), 3);
  // Group 0 (k=2) has rs {1,3}; group 1 (k=5) has r {2}.
  EXPECT_EQ(plan.min_layer_of_group(0), 1);
  EXPECT_EQ(plan.max_layer_of_group(0), 3);
  EXPECT_EQ(plan.min_layer_of_group(1), 2);
  EXPECT_EQ(plan.max_layer_of_group(1), 2);
}

TEST(PlanTest, MaxLayerForCountMatchesDef6) {
  // Paper Fig. 3: QG1 = k=2 with rs {1,3,4}; QG2 = k=3 with rs {2,3,4}.
  Workload w = MakeWorkload(
      {OutlierQuery(1.0, 2, 100, 10), OutlierQuery(3.0, 2, 100, 10),
       OutlierQuery(4.0, 2, 100, 10), OutlierQuery(2.0, 3, 100, 10),
       OutlierQuery(3.0, 3, 100, 10), OutlierQuery(4.0, 3, 100, 10)});
  WorkloadPlan plan(w);
  ASSERT_EQ(plan.k_max(), 3);
  // Candidate dominated by 0 or 1 points: both groups usable, max layer 4.
  EXPECT_EQ(plan.MaxLayerForCount(0), 4);
  EXPECT_EQ(plan.MaxLayerForCount(1), 4);
  // Dominated by 2: only the k=3 group can use it, its max layer is 4.
  EXPECT_EQ(plan.MaxLayerForCount(2), 4);
}

TEST(PlanTest, MaxLayerForCountDropsExhaustedGroups) {
  // Unique rs {1, 3} -> layers 1 and 2. The k=2 group reaches layer 2
  // (r=3); the k=5 group only covers layer 1 (r=1).
  Workload w = MakeWorkload(
      {OutlierQuery(3.0, 2, 100, 10), OutlierQuery(1.0, 5, 100, 10)});
  WorkloadPlan plan(w);
  EXPECT_EQ(plan.MaxLayerForCount(0), 2);  // both groups
  EXPECT_EQ(plan.MaxLayerForCount(1), 2);
  EXPECT_EQ(plan.MaxLayerForCount(2), 1);  // only k=5 remains
  EXPECT_EQ(plan.MaxLayerForCount(4), 1);
}

TEST(PlanTest, SafetyRequirementStaircase) {
  // Group k=5 min layer 1; group k=2 min layer 2 (implied: 5 >= 2 at an
  // earlier layer); group k=9 min layer 3.
  Workload w = MakeWorkload(
      {OutlierQuery(1.0, 5, 100, 10), OutlierQuery(2.0, 2, 100, 10),
       OutlierQuery(3.0, 9, 100, 10)});
  WorkloadPlan plan(w);
  const auto& reqs = plan.safety_requirements();
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].layer, 1);
  EXPECT_EQ(reqs[0].k, 5);
  EXPECT_EQ(reqs[1].layer, 3);
  EXPECT_EQ(reqs[1].k, 9);
}

TEST(PlanTest, SwiftQueryParameters) {
  Workload w = MakeWorkload({OutlierQuery(1.0, 3, 100, 10),
                             OutlierQuery(1.0, 3, 500, 25),
                             OutlierQuery(1.0, 3, 300, 40)});
  WorkloadPlan plan(w);
  EXPECT_EQ(plan.win_max(), 500);
  EXPECT_EQ(plan.slide_gcd(), 5);
}

TEST(PlanDeltaTest, ClassifiesOverlayExtendAndRebuild) {
  Workload w = MakeWorkload(
      {OutlierQuery(1.0, 3, 100, 10), OutlierQuery(2.0, 2, 100, 10)});
  WorkloadPlan plan(w);

  // Removing a query: always overlay-only.
  Workload removed = MakeWorkload({OutlierQuery(1.0, 3, 100, 10)});
  EXPECT_EQ(plan.Classify(removed), PlanDelta::kOverlayOnly);

  // Adding at an existing layer, k and win inside the compiled basis.
  Workload same_layer = w;
  same_layer.AddQuery(OutlierQuery(1.0, 2, 50, 10));
  EXPECT_EQ(plan.Classify(same_layer), PlanDelta::kOverlayOnly);

  // New radius: new layer -> basis extend.
  Workload new_r = w;
  new_r.AddQuery(OutlierQuery(1.5, 2, 100, 10));
  EXPECT_EQ(plan.Classify(new_r), PlanDelta::kBasisExtend);

  // k beyond the compiled envelope.
  Workload big_k = w;
  big_k.AddQuery(OutlierQuery(1.0, 4, 100, 10));
  EXPECT_EQ(plan.Classify(big_k), PlanDelta::kBasisExtend);

  // Window beyond the swift envelope.
  Workload big_win = w;
  big_win.AddQuery(OutlierQuery(1.0, 2, 200, 10));
  EXPECT_EQ(plan.Classify(big_win), PlanDelta::kBasisExtend);

  // Structural mismatches: rebuild.
  Workload time_windows(WindowType::kTime);
  time_windows.AddQuery(OutlierQuery(1.0, 3, 100, 10));
  EXPECT_EQ(plan.Classify(time_windows), PlanDelta::kRebuild);
  EXPECT_EQ(plan.Classify(Workload(WindowType::kCount)),
            PlanDelta::kRebuild);
}

TEST(PlanDeltaTest, ExactBasisRejectsSameLayerAddBeyondItsEvidence) {
  // Exact plan: the k=5 group stops at layer 1, so the Def-6 table prunes
  // layer-2 evidence for counts >= 2 — a later (r=2, k=5) add is NOT
  // overlay-safe even though r=2 is an existing layer.
  Workload w = MakeWorkload(
      {OutlierQuery(1.0, 5, 100, 10), OutlierQuery(2.0, 2, 100, 10)});
  Workload grown = w;
  grown.AddQuery(OutlierQuery(2.0, 5, 100, 10));

  WorkloadPlan exact(w);
  EXPECT_EQ(exact.Classify(grown), PlanDelta::kBasisExtend);

  // The elastic basis keeps every layer alive to the full k envelope, so
  // the same add becomes overlay-only.
  WorkloadPlan elastic(w, PlanHeadroom::Elastic());
  EXPECT_EQ(elastic.Classify(grown), PlanDelta::kOverlayOnly);
}

TEST(PlanDeltaTest, HeadroomReservesLayersAndKSlack) {
  Workload w = MakeWorkload({OutlierQuery(1.0, 2, 100, 10)});

  PlanHeadroom reserve_r;
  reserve_r.r_values = {3.0};
  WorkloadPlan with_r(w, reserve_r);
  EXPECT_EQ(with_r.num_layers(), 2);
  Workload at_reserved = w;
  at_reserved.AddQuery(OutlierQuery(3.0, 2, 100, 10));
  EXPECT_EQ(with_r.Classify(at_reserved), PlanDelta::kOverlayOnly);

  PlanHeadroom slack = PlanHeadroom::Elastic();
  slack.k_slack = 3;
  WorkloadPlan with_slack(w, slack);
  EXPECT_EQ(with_slack.k_max(), 5);
  Workload deeper = w;
  deeper.AddQuery(OutlierQuery(1.0, 5, 100, 10));
  EXPECT_EQ(with_slack.Classify(deeper), PlanDelta::kOverlayOnly);

  PlanHeadroom floor;
  floor.win_floor = 400;
  WorkloadPlan with_floor(w, floor);
  EXPECT_EQ(with_floor.win_max(), 400);
  Workload wider = w;
  wider.AddQuery(OutlierQuery(1.0, 2, 300, 10));
  EXPECT_EQ(with_floor.Classify(wider), PlanDelta::kOverlayOnly);
}

TEST(PlanDeltaTest, ApplyOverlaySwapsWithoutTouchingBasis) {
  Workload w = MakeWorkload(
      {OutlierQuery(1.0, 3, 100, 10), OutlierQuery(2.0, 2, 100, 10)});
  WorkloadPlan plan(w);
  const WorkloadPlan::Basis before = plan.basis();

  Workload removed = MakeWorkload({OutlierQuery(2.0, 2, 100, 10)});
  ASSERT_TRUE(plan.ApplyOverlay(removed));
  EXPECT_TRUE(plan.basis() == before);  // basis untouched
  EXPECT_EQ(plan.workload().num_queries(), 1u);
  EXPECT_EQ(plan.num_groups(), 1);
  EXPECT_EQ(plan.layer_of_query(0), 2);  // r=2 is still layer 2
  EXPECT_EQ(plan.num_layers(), 2);       // both layers remain compiled

  // A basis-extending next leaves the plan unchanged and returns false.
  Workload grown = removed;
  grown.AddQuery(OutlierQuery(5.0, 2, 100, 10));
  EXPECT_FALSE(plan.ApplyOverlay(grown));
  EXPECT_EQ(plan.workload().num_queries(), 1u);
  EXPECT_TRUE(plan.basis() == before);
}

TEST(PlanDeltaTest, AdoptBasisRequiresCoverage) {
  Workload w = MakeWorkload({OutlierQuery(1.0, 3, 100, 10)});
  WorkloadPlan plan(w);

  // A wider basis (elastic, extra layer, extra k) covers the workload.
  PlanHeadroom wide = PlanHeadroom::Elastic();
  wide.r_values = {2.0};
  wide.k_slack = 2;
  const WorkloadPlan donor(w, wide);
  ASSERT_TRUE(plan.AdoptBasis(donor.basis()));
  EXPECT_EQ(plan.num_layers(), 2);
  EXPECT_EQ(plan.k_max(), 5);
  EXPECT_EQ(plan.layer_of_query(0), 1);

  // A basis compiled for a different radius cannot cover r=1.
  const WorkloadPlan stranger(
      MakeWorkload({OutlierQuery(4.0, 3, 100, 10)}));
  EXPECT_FALSE(plan.AdoptBasis(stranger.basis()));
  EXPECT_EQ(plan.num_layers(), 2);  // unchanged
}

}  // namespace
}  // namespace sop
