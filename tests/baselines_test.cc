// Unit tests for the baseline detectors: the Naive oracle detector, LEAP,
// and MCOD. Deeper cross-checks live in equivalence_test.cc.

#include <memory>

#include "gtest/gtest.h"
#include "sop/baselines/leap.h"
#include "sop/baselines/mcod.h"
#include "sop/baselines/naive.h"
#include "sop/detector/driver.h"
#include "test_util.h"

namespace sop {
namespace {

using testing::ExpectMatchesOracle;
using testing::Points1D;

Workload SingleQuery(double r, int64_t k, int64_t win, int64_t slide) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(r, k, win, slide));
  return w;
}

Workload MixedWorkload() {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(0.5, 1, 6, 3));
  w.AddQuery(OutlierQuery(1.5, 3, 9, 3));
  w.AddQuery(OutlierQuery(1.0, 2, 12, 6));
  return w;
}

std::vector<Point> MixedStream() {
  return Points1D({0.0, 0.4, 5.0, 0.8, 1.2, 5.4, 9.0, 1.6, 2.0,
                   5.8, 2.4, 0.0, 2.8, 6.2, 3.2, 9.4, 3.6, 4.0});
}

TEST(NaiveDetectorTest, MatchesIndependentOracle) {
  const Workload w = MixedWorkload();
  NaiveDetector detector(w);
  ExpectMatchesOracle(w, MixedStream(), &detector, "naive");
}

TEST(NaiveDetectorTest, SingleQueryHandChecked) {
  const Workload w = SingleQuery(1.0, 1, 4, 2);
  NaiveDetector detector(w);
  std::vector<QueryResult> results = CollectResults(
      w, Points1D({0.0, 0.5, 10.0, 0.6, 20.0, 20.4}), &detector);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].outliers.empty());
  EXPECT_EQ(results[1].outliers, (std::vector<Seq>{2}));
  EXPECT_EQ(results[2].outliers, (std::vector<Seq>{2, 3}));
}

TEST(LeapDetectorTest, MatchesOracleOnMixedWorkload) {
  const Workload w = MixedWorkload();
  LeapDetector detector(w);
  ExpectMatchesOracle(w, MixedStream(), &detector, "leap mixed");
}

TEST(LeapDetectorTest, MatchesOracleWhenSlideExceedsWindow) {
  const Workload w = SingleQuery(1.0, 2, 3, 6);
  LeapDetector detector(w);
  ExpectMatchesOracle(
      w, Points1D({0.0, 0.1, 9.0, 4.0, 4.1, 4.2, 0.0, 0.1, 9.0, 4.0, 4.1,
                   4.2}),
      &detector, "leap hopping");
}

TEST(LeapDetectorTest, TimeBasedMatchesOracle) {
  Workload w(WindowType::kTime);
  w.AddQuery(OutlierQuery(1.0, 1, 10, 5));
  w.AddQuery(OutlierQuery(1.0, 2, 20, 10));
  const std::vector<Timestamp> times = {1, 2, 2, 3, 9, 9, 30, 31, 32, 33};
  const std::vector<double> values = {0.0, 0.2, 5.0, 0.4, 0.6,
                                      5.2, 0.8, 1.0, 5.4, 1.2};
  LeapDetector detector(w);
  ExpectMatchesOracle(w, Points1D(times, values), &detector, "leap time");
}

TEST(LeapDetectorTest, MemoryGrowsWithQueryCount) {
  // Same queries duplicated: evidence is per query, so memory scales up.
  auto run = [](size_t copies) {
    Workload w(WindowType::kCount);
    for (size_t i = 0; i < copies; ++i) {
      w.AddQuery(OutlierQuery(1.0, 3, 12, 4));
    }
    LeapDetector detector(w);
    size_t peak = 0;
    RunStream(w, Points1D(std::vector<double>(48, 0.0)), &detector,
              [](const QueryResult&) {});
    peak = detector.MemoryBytes();
    return peak;
  };
  EXPECT_GT(run(8), 2 * run(1));
}

TEST(LeapDetectorTest, MinimalProbingStopsAtK) {
  // k=1 on a dense stream: each point's probe finds a neighbor almost
  // immediately, so distance computations stay near one per evaluation.
  const Workload w = SingleQuery(10.0, 1, 16, 4);
  LeapDetector detector(w);
  CollectResults(w, Points1D(std::vector<double>(64, 0.0)), &detector);
  ASSERT_GT(detector.stats().points_evaluated, 0);
  EXPECT_LT(detector.stats().distances_computed,
            2 * detector.stats().points_evaluated);
}

TEST(LeapDetectorTest, SafeInliersStopProbing) {
  // Dense stream, k=3: points collect 3 succeeding neighbors quickly and
  // are never probed again (distance count plateaus well below the naive
  // points x window bound).
  const Workload w = SingleQuery(10.0, 3, 24, 4);
  LeapDetector detector(w);
  std::vector<double> values(120, 0.0);
  CollectResults(w, Points1D(values), &detector);
  // Points whose preceding evidence expires before they do re-probe the
  // new side, find succeeding neighbors and retire as safe inliers.
  EXPECT_GT(detector.stats().safe_points_discovered, 20);
  // Naive would need ~ |W| distances per point per emission.
  EXPECT_LT(detector.stats().distances_computed, 4000);
}

TEST(McodDetectorTest, MatchesOracleOnMixedWorkload) {
  const Workload w = MixedWorkload();
  McodDetector detector(w);
  ExpectMatchesOracle(w, MixedStream(), &detector, "mcod mixed");
}

TEST(McodDetectorTest, FormsMicroClustersOnDenseData) {
  // k_max = 2; >= 3 points within r_min/2 = 0.5 of each other arrive
  // together, so a micro-cluster must form.
  const Workload w = SingleQuery(1.0, 2, 12, 4);
  McodDetector detector(w);
  std::vector<double> values(12, 0.0);
  values[5] = 50.0;  // one faraway point stays dispersed
  CollectResults(w, Points1D(values), &detector);
  EXPECT_GE(detector.num_clusters(), 1u);
}

TEST(McodDetectorTest, ClustersDissolveOnExpiry) {
  // Dense prefix forms a cluster; the rest of the stream is far away, so
  // once the prefix expires the cluster must dissolve.
  const Workload w = SingleQuery(1.0, 2, 4, 2);
  McodDetector detector(w);
  std::vector<double> values = {0, 0, 0, 0, 50, 51, 52, 53, 54, 55};
  CollectResults(w, Points1D(values), &detector);
  EXPECT_EQ(detector.num_clusters(), 0u);
}

TEST(McodDetectorTest, MatchesOracleWithClusterChurn) {
  // Alternating dense bursts and sparse noise exercise formation,
  // dissolution and the co-member fast path against exact counting.
  const Workload w = SingleQuery(2.0, 3, 8, 4);
  std::vector<double> values;
  for (int block = 0; block < 6; ++block) {
    const double base = block % 2 == 0 ? 0.0 : 40.0;
    for (int i = 0; i < 4; ++i) {
      values.push_back(base + 0.1 * i + 7.0 * (i == 3 ? 1 : 0));
    }
  }
  McodDetector detector(w);
  ExpectMatchesOracle(w, Points1D(values), &detector, "mcod churn");
}

TEST(McodDetectorTest, TimeBasedMatchesOracle) {
  Workload w(WindowType::kTime);
  w.AddQuery(OutlierQuery(1.0, 2, 10, 5));
  const std::vector<Timestamp> times = {1, 2, 3, 4, 11, 12, 13, 25, 26, 27};
  const std::vector<double> values = {0.0, 0.1, 0.2, 9.0, 0.3,
                                      0.4, 9.1, 0.5, 0.6, 0.7};
  McodDetector detector(w);
  ExpectMatchesOracle(w, Points1D(times, values), &detector, "mcod time");
}

}  // namespace
}  // namespace sop
