// Crash-recovery tests for the engine-level run checkpoints
// (detector/run_checkpoint.h): interrupt/restore emission equivalence for
// every registered detector under both window types, the corruption
// matrix every framed checkpoint must reject, and a seed-logged
// randomized corruption fuzz loop.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sop/common/fault.h"
#include "sop/common/frame.h"
#include "sop/common/random.h"
#include "sop/detector/engine.h"
#include "sop/detector/factory.h"
#include "sop/detector/run_checkpoint.h"
#include "sop/io/file_util.h"
#include "test_util.h"

namespace sop {
namespace {

using testing::ExpectSameResults;

Workload CountWorkload() {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(1.0, 2, 16, 4));
  w.AddQuery(OutlierQuery(2.5, 4, 24, 8));
  w.AddQuery(OutlierQuery(1.5, 3, 8, 4));
  return w;
}

Workload TimeWorkload() {
  Workload w(WindowType::kTime);
  w.AddQuery(OutlierQuery(1.0, 2, 16, 4));
  w.AddQuery(OutlierQuery(2.5, 4, 24, 8));
  return w;
}

// A stream with a mix of dense inliers and sparse far-out values. For the
// time workload the timestamps advance irregularly (including a burst gap
// that produces empty batch spans).
std::vector<Point> TestStream(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  Timestamp t = 0;
  for (Seq s = 0; s < n; ++s) {
    const double v = rng.Bernoulli(0.2) ? rng.UniformDouble(0, 30)
                                        : rng.Normal(10, 0.8);
    t += rng.Bernoulli(0.05) ? 13 : 1;  // occasional gap spanning batches
    points.emplace_back(s, t, std::vector<double>{v});
  }
  return points;
}

std::vector<QueryResult> RunAll(ExecutionEngine* engine, const Workload& w,
                                const std::vector<Point>& points,
                                OutlierDetector* detector) {
  std::vector<QueryResult> out;
  engine->Run(w, points, detector,
              [&out](const QueryResult& r) { out.push_back(r); });
  return out;
}

// Interrupts a checkpointed run (by truncating the stream mid-batch),
// resumes from the written checkpoint over the full stream, and checks the
// resumed emissions equal the uninterrupted run's tail.
void CheckResumeEquivalence(const std::string& name, const Workload& w,
                            const std::vector<Point>& points,
                            const std::string& checkpoint_path) {
  SCOPED_TRACE(name);
  ExecutionEngine plain;
  std::unique_ptr<OutlierDetector> baseline_detector = CreateDetector(name, w);
  const std::vector<QueryResult> baseline =
      RunAll(&plain, w, points, baseline_detector.get());
  ASSERT_FALSE(baseline.empty());

  ExecOptions ck_options;
  ck_options.checkpoint.path = checkpoint_path;
  ck_options.checkpoint.every_batches = 7;
  ExecutionEngine ck_engine(ck_options);

  // "Crash" two thirds of the way through, mid-batch.
  std::vector<Point> truncated(points.begin(),
                               points.begin() + points.size() * 2 / 3 + 1);
  std::unique_ptr<OutlierDetector> interrupted = CreateDetector(name, w);
  RunAll(&ck_engine, w, truncated, interrupted.get());

  RunCheckpoint cp;
  std::string error;
  ASSERT_TRUE(LoadRunCheckpoint(checkpoint_path, &cp, &error)) << error;
  ASSERT_GT(cp.batches_advanced, 0);

  std::unique_ptr<OutlierDetector> resumed_detector = CreateDetector(name, w);
  VectorSource source(points);
  RunMetrics metrics;
  std::vector<QueryResult> resumed;
  ExecutionEngine resume_engine;
  ASSERT_TRUE(resume_engine.RunResumed(
      w, &source, resumed_detector.get(), cp, &metrics, &error,
      [&resumed](const QueryResult& r) { resumed.push_back(r); }))
      << error;

  std::vector<QueryResult> expected_tail;
  for (const QueryResult& r : baseline) {
    if (r.boundary > cp.last_boundary) expected_tail.push_back(r);
  }
  ASSERT_FALSE(expected_tail.empty())
      << "checkpoint too late to exercise resume";
  ExpectSameResults(expected_tail, resumed, name + " resume tail");
}

TEST(RecoveryTest, EveryDetectorResumesIdenticallyCountBased) {
  const Workload w = CountWorkload();
  const std::vector<Point> points = TestStream(128, 17);
  const std::string path = ::testing::TempDir() + "/recovery_count.ck";
  for (const std::string& name : KnownDetectorNames()) {
    CheckResumeEquivalence(name, w, points, path);
  }
}

TEST(RecoveryTest, EveryDetectorResumesIdenticallyTimeBased) {
  const Workload w = TimeWorkload();
  const std::vector<Point> points = TestStream(128, 29);
  const std::string path = ::testing::TempDir() + "/recovery_time.ck";
  for (const std::string& name : KnownDetectorNames()) {
    CheckResumeEquivalence(name, w, points, path);
  }
}

TEST(RecoveryTest, ResumeRejectsMismatchedIdentity) {
  const Workload w = CountWorkload();
  const std::vector<Point> points = TestStream(64, 3);
  const std::string path = ::testing::TempDir() + "/recovery_identity.ck";

  ExecOptions options;
  options.checkpoint.path = path;
  options.checkpoint.every_batches = 4;
  ExecutionEngine engine(options);
  std::unique_ptr<OutlierDetector> detector = CreateDetector("sop", w);
  RunAll(&engine, w, points, detector.get());

  RunCheckpoint cp;
  std::string error;
  ASSERT_TRUE(LoadRunCheckpoint(path, &cp, &error)) << error;

  ExecutionEngine plain;
  RunMetrics metrics;

  // Wrong detector.
  std::unique_ptr<OutlierDetector> other = CreateDetector("mcod", w);
  VectorSource s1(points);
  EXPECT_FALSE(plain.RunResumed(w, &s1, other.get(), cp, &metrics, &error));
  EXPECT_NE(error.find("detector"), std::string::npos) << error;

  // Wrong workload.
  Workload w2 = CountWorkload();
  w2.AddQuery(OutlierQuery(9.0, 1, 8, 4));
  std::unique_ptr<OutlierDetector> fresh = CreateDetector("sop", w2);
  VectorSource s2(points);
  EXPECT_FALSE(plain.RunResumed(w2, &s2, fresh.get(), cp, &metrics, &error));
  EXPECT_NE(error.find("fingerprint"), std::string::npos) << error;

  // Stream shorter than the checkpointed position.
  std::vector<Point> shorter(points.begin(), points.begin() + 8);
  std::unique_ptr<OutlierDetector> fresh2 = CreateDetector("sop", w);
  VectorSource s3(shorter);
  EXPECT_FALSE(plain.RunResumed(w, &s3, fresh2.get(), cp, &metrics, &error));
  EXPECT_NE(error.find("source ended"), std::string::npos) << error;
}

// Builds one valid serialized checkpoint for the corruption drills.
std::string ValidCheckpointBytes() {
  RunCheckpoint cp;
  cp.workload_fingerprint = 0x1234'5678'9abc'def0ULL;
  cp.detector_name = "mcod";
  cp.window_type = WindowType::kCount;
  cp.batch_span = 4;
  cp.points_advanced = 24;
  cp.batches_advanced = 6;
  cp.last_boundary = 24;
  RunCheckpoint::Batch b;
  b.boundary = 24;
  for (Seq s = 20; s < 24; ++s) {
    b.points.emplace_back(s, s, std::vector<double>{1.5, -2.5});
  }
  cp.history.push_back(b);
  return SerializeRunCheckpoint(cp);
}

TEST(RecoveryTest, CorruptionMatrixEveryTruncationRejected) {
  const std::string bytes = ValidCheckpointBytes();
  RunCheckpoint cp;
  std::string error;
  ASSERT_TRUE(DeserializeRunCheckpoint(bytes, &cp, &error)) << error;
  EXPECT_EQ(cp.detector_name, "mcod");
  EXPECT_EQ(cp.history.size(), 1u);
  EXPECT_EQ(cp.history[0].points.size(), 4u);

  for (size_t len = 0; len < bytes.size(); ++len) {
    error.clear();
    EXPECT_FALSE(
        DeserializeRunCheckpoint(bytes.substr(0, len), &cp, &error))
        << "truncation to " << len << " bytes accepted";
    EXPECT_FALSE(error.empty()) << "no diagnostic at length " << len;
  }
}

TEST(RecoveryTest, CorruptionMatrixEveryBitFlipRejected) {
  const std::string bytes = ValidCheckpointBytes();
  RunCheckpoint cp;
  std::string error;
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = bytes;
      mutated[byte] ^= static_cast<char>(1 << bit);
      EXPECT_FALSE(DeserializeRunCheckpoint(mutated, &cp, &error))
          << "flip of byte " << byte << " bit " << bit << " accepted";
    }
  }
}

TEST(RecoveryTest, CorruptionMatrixTrailingBytesAndVersionBumpRejected) {
  const std::string bytes = ValidCheckpointBytes();
  RunCheckpoint cp;
  std::string error;
  EXPECT_FALSE(DeserializeRunCheckpoint(bytes + "x", &cp, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;

  // A frame-version bump must be refused even with a consistent CRC: the
  // easiest forgery is re-framing the valid payload with a bad version.
  std::string_view payload;
  ASSERT_TRUE(UnwrapFrame(bytes, &payload, &error)) << error;
  std::string reframed = WrapFrame(payload);
  reframed[4] = static_cast<char>(reframed[4] + 1);  // frame version field
  EXPECT_FALSE(DeserializeRunCheckpoint(reframed, &cp, &error));
  EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(RecoveryTest, InjectedWriteFailureLeavesPreviousCheckpoint) {
  const std::string path = ::testing::TempDir() + "/recovery_inject.ck";
  RunCheckpoint cp;
  cp.detector_name = "first";
  cp.batch_span = 4;
  std::string error;
  ASSERT_TRUE(SaveRunCheckpoint(path, cp, &error)) << error;

  FaultInjector injector(7);
  injector.SetRate(FaultSite::kCheckpointWrite, 1.0);
  ScopedFaultInjection armed(&injector);
  cp.detector_name = "second";
  EXPECT_FALSE(SaveRunCheckpoint(path, cp, &error));
  EXPECT_NE(error.find("injected"), std::string::npos) << error;

  RunCheckpoint reloaded;
  // Reads also consult the injector; only writes were armed.
  ASSERT_TRUE(LoadRunCheckpoint(path, &reloaded, &error)) << error;
  EXPECT_EQ(reloaded.detector_name, "first");
}

TEST(RecoveryTest, InjectedByteCorruptionIsCaughtOnLoad) {
  const std::string path = ::testing::TempDir() + "/recovery_corrupt.ck";
  RunCheckpoint cp;
  cp.detector_name = "sop";
  cp.batch_span = 4;
  std::string error;

  FaultInjector injector(11);
  injector.SetRate(FaultSite::kCheckpointBytes, 1.0);
  {
    ScopedFaultInjection armed(&injector);
    ASSERT_TRUE(SaveRunCheckpoint(path, cp, &error)) << error;
  }
  RunCheckpoint reloaded;
  EXPECT_FALSE(LoadRunCheckpoint(path, &reloaded, &error));
  EXPECT_FALSE(error.empty());

  FaultInjector read_injector(13);
  read_injector.SetRate(FaultSite::kCheckpointRead, 1.0);
  ScopedFaultInjection armed(&read_injector);
  EXPECT_FALSE(LoadRunCheckpoint(path, &reloaded, &error));
  EXPECT_NE(error.find("injected"), std::string::npos) << error;
}

// Generation retention: with generations > 1 every save rotates the
// previous files one slot older, and restore walks newest-to-oldest past
// anything the corruption matrix can do to the newer generations.
TEST(RecoveryTest, GenerationFallbackSurvivesCorruptNewest) {
  const std::string path = ::testing::TempDir() + "/recovery_gen.ck";
  for (int g = 0; g < 4; ++g) {
    std::remove(io::GenerationPath(path, g).c_str());
  }

  RunCheckpoint cp;
  cp.batch_span = 4;
  std::string error;
  cp.detector_name = "gen-a";
  ASSERT_TRUE(SaveRunCheckpoint(path, cp, &error, 3)) << error;
  cp.detector_name = "gen-b";
  ASSERT_TRUE(SaveRunCheckpoint(path, cp, &error, 3)) << error;
  cp.detector_name = "gen-c";
  ASSERT_TRUE(SaveRunCheckpoint(path, cp, &error, 3)) << error;

  RunCheckpoint out;
  int gen = -1;
  ASSERT_TRUE(LoadRunCheckpoint(path, &out, &error, 3, &gen)) << error;
  EXPECT_EQ(gen, 0);
  EXPECT_EQ(out.detector_name, "gen-c");

  std::string newest;
  ASSERT_TRUE(io::ReadFileToString(path, &newest, &error)) << error;

  // Truncation/bit-flip matrix on the newest generation (the recovery_test
  // corruption drill, now against fallback): every mutant must be rejected
  // AND restore must land on generation 1, never fail outright.
  for (size_t len = 0; len < newest.size(); len += 7) {
    ASSERT_TRUE(io::WriteFileAtomic(path, newest.substr(0, len), &error));
    int g = -1;
    ASSERT_TRUE(LoadRunCheckpoint(path, &out, &error, 3, &g))
        << "truncation to " << len << ": " << error;
    EXPECT_EQ(g, 1) << "truncation to " << len;
    EXPECT_EQ(out.detector_name, "gen-b");
  }
  for (size_t bit = 0; bit < newest.size() * 8; bit += 11) {
    std::string mutated = newest;
    mutated[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    ASSERT_TRUE(io::WriteFileAtomic(path, mutated, &error));
    int g = -1;
    ASSERT_TRUE(LoadRunCheckpoint(path, &out, &error, 3, &g))
        << "bit flip " << bit << ": " << error;
    EXPECT_EQ(g, 1) << "bit flip " << bit;
    EXPECT_EQ(out.detector_name, "gen-b");
  }

  // Crash between rotation and publish: the newest slot is simply missing.
  ASSERT_EQ(std::remove(path.c_str()), 0);
  gen = -1;
  ASSERT_TRUE(LoadRunCheckpoint(path, &out, &error, 3, &gen)) << error;
  EXPECT_EQ(gen, 1);
  EXPECT_EQ(out.detector_name, "gen-b");

  // An injected read failure on the newest slot behaves like corruption:
  // the next generation answers (bounded to one failure so it does).
  ASSERT_TRUE(io::WriteFileAtomic(path, newest, &error)) << error;
  {
    FaultInjector injector(5);
    injector.SetRate(FaultSite::kCheckpointRead, 1.0);
    injector.SetMaxFailures(FaultSite::kCheckpointRead, 1);
    ScopedFaultInjection armed(&injector);
    int g = -1;
    ASSERT_TRUE(LoadRunCheckpoint(path, &out, &error, 3, &g)) << error;
    EXPECT_EQ(g, 1);
    EXPECT_EQ(out.detector_name, "gen-b");
  }

  // Two corrupt generations fall through to the third...
  ASSERT_TRUE(io::WriteFileAtomic(path, "garbage", &error));
  ASSERT_TRUE(
      io::WriteFileAtomic(io::GenerationPath(path, 1), "junk", &error));
  gen = -1;
  ASSERT_TRUE(LoadRunCheckpoint(path, &out, &error, 3, &gen)) << error;
  EXPECT_EQ(gen, 2);
  EXPECT_EQ(out.detector_name, "gen-a");

  // ...and with every generation gone, restore fails with one diagnostic
  // per slot tried.
  ASSERT_TRUE(
      io::WriteFileAtomic(io::GenerationPath(path, 2), "zip", &error));
  EXPECT_FALSE(LoadRunCheckpoint(path, &out, &error, 3));
  EXPECT_NE(error.find(path + ":"), std::string::npos) << error;
  EXPECT_NE(error.find(path + ".1:"), std::string::npos) << error;
  EXPECT_NE(error.find(path + ".2:"), std::string::npos) << error;
}

// Randomized corruption fuzz: mutate a valid checkpoint (bit flips,
// truncations, splices) and feed pure garbage; the deserializer must
// reject everything without crashing. Time-bounded; the seed is logged so
// any failure replays exactly. SOP_FUZZ_MS extends the budget (check.sh
// runs ~2s); SOP_FUZZ_SEED pins the seed.
TEST(RecoveryTest, CorruptionFuzzNeverCrashesOrAccepts) {
  const testing::FuzzParams fuzz =
      testing::AnnouncedFuzzParams("checkpoint corruption", 200);
  const uint64_t seed = fuzz.seed;
  const int64_t budget_ms = fuzz.budget_ms;

  const std::string valid = ValidCheckpointBytes();
  Rng rng(seed);
  RunCheckpoint cp;
  std::string error;
  uint64_t iterations = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    for (int burst = 0; burst < 64; ++burst, ++iterations) {
      std::string mutated;
      const uint64_t kind = rng.NextBelow(4);
      if (kind == 0) {
        // Bit flips (1..8) over the valid bytes.
        mutated = valid;
        const uint64_t flips = 1 + rng.NextBelow(8);
        for (uint64_t f = 0; f < flips; ++f) {
          const uint64_t bit = rng.NextBelow(mutated.size() * 8);
          mutated[bit / 8] ^= static_cast<char>(1u << (bit % 8));
        }
      } else if (kind == 1) {
        mutated = valid.substr(0, rng.NextBelow(valid.size()));
      } else if (kind == 2) {
        // Splice a random chunk of garbage into the middle.
        mutated = valid;
        const uint64_t at = rng.NextBelow(mutated.size());
        const uint64_t len = 1 + rng.NextBelow(32);
        for (uint64_t j = 0; j < len; ++j) {
          mutated.insert(mutated.begin() + static_cast<int64_t>(at),
                         static_cast<char>(rng.NextBelow(256)));
        }
      } else {
        // Pure garbage of arbitrary size.
        const uint64_t len = rng.NextBelow(valid.size() * 2 + 1);
        mutated.resize(len);
        for (char& c : mutated) c = static_cast<char>(rng.NextBelow(256));
      }
      // Flips can cancel (same bit twice); only genuine mutants must fail.
      if (mutated == valid) continue;
      error.clear();
      ASSERT_FALSE(DeserializeRunCheckpoint(mutated, &cp, &error))
          << "accepted a mutated checkpoint (seed " << seed << ", iteration "
          << iterations << ")";
      ASSERT_FALSE(error.empty());
    }
  }
  std::fprintf(stderr, "[ fuzz ] %llu corrupt inputs rejected\n",
               static_cast<unsigned long long>(iterations));
}

}  // namespace
}  // namespace sop
