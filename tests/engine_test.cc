// Tests for the layered execution engine: the ThreadPool subsystem, the
// engine's driver loop (metrics, latency percentiles, RunStream parity)
// and — the load-bearing property — that partition-parallel execution of a
// PartitionedDetector produces a result stream byte-identical to serial
// execution, at every pool width.

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"
#include "sop/common/random.h"
#include "sop/common/thread_pool.h"
#include "sop/core/grouped_sop.h"
#include "sop/core/multi_attribute.h"
#include "sop/core/sop_detector.h"
#include "sop/detector/driver.h"
#include "sop/detector/engine.h"
#include "sop/detector/partitioned.h"
#include "test_util.h"

namespace sop {
namespace {

using testing::ExpectSameResults;

TEST(ThreadPoolTest, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  // Futures joined in submission order carry the matching results:
  // submission order, not completion order, defines the output.
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  std::future<int> ok = pool.Submit([]() { return 7; });
  std::future<int> bad = pool.Submit(
      []() -> int { throw std::runtime_error("child failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task and keeps serving.
  EXPECT_EQ(pool.Submit([]() { return 8; }).get(), 8);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 10; ++batch) {
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 16; ++i) {
      futures.push_back(pool.Submit([&counter]() { ++counter; }));
    }
    for (auto& f : futures) f.get();  // quiesce between batches
    EXPECT_EQ(counter.load(), (batch + 1) * 16);
  }
}

TEST(ThreadPoolTest, MoveOnlyTaskCaptures) {
  ThreadPool pool(2);
  auto payload = std::make_unique<int>(41);
  std::future<int> f = pool.Submit(
      [p = std::move(payload)]() { return *p + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&ran]() { ++ran; });
    }
    // Destruction must run every already-submitted task before joining.
  }
  EXPECT_EQ(ran.load(), 8);
}

// ---------------------------------------------------------------------------
// Engine-level tests.

std::vector<Point> RandomStream(int64_t n, int dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> points;
  for (Seq s = 0; s < n; ++s) {
    std::vector<double> v;
    for (int d = 0; d < dims; ++d) {
      if (rng.Bernoulli(0.1)) {
        v.push_back(rng.UniformDouble(0, 40));
      } else {
        v.push_back(rng.Normal(rng.Bernoulli(0.5) ? 10.0 : 25.0, 1.5));
      }
    }
    points.emplace_back(s, s, std::move(v));
  }
  return points;
}

// A randomized multi-attribute workload with >= 4 partitions.
Workload RandomMultiAttributeWorkload(uint64_t seed) {
  Rng rng(seed);
  Workload w(WindowType::kCount);
  w.AddAttributeSet({0});
  w.AddAttributeSet({1});
  w.AddAttributeSet({0, 1});
  for (int set = 0; set <= 3; ++set) {
    const int queries = static_cast<int>(rng.UniformInt(1, 3));
    for (int q = 0; q < queries; ++q) {
      w.AddQuery(OutlierQuery(rng.UniformDouble(1.0, 4.0),
                              rng.UniformInt(2, 6),
                              4 * rng.UniformInt(2, 6),
                              4 * rng.UniformInt(1, 2), set));
    }
  }
  return w;
}

std::vector<QueryResult> RunWithEngine(ExecutionEngine* engine,
                                       const Workload& w,
                                       const std::vector<Point>& points,
                                       OutlierDetector* detector) {
  std::vector<QueryResult> all;
  engine->Run(w, points, detector,
              [&all](const QueryResult& r) { all.push_back(r); });
  return all;
}

TEST(ExecutionEngineTest, SerialEngineMatchesRunStreamWrapper) {
  const Workload w = RandomMultiAttributeWorkload(11);
  const std::vector<Point> points = RandomStream(160, 2, 12);
  const auto factory = [](const Workload& sub) {
    return std::make_unique<SopDetector>(sub);
  };
  MultiAttributeDetector via_wrapper(w, factory);
  const std::vector<QueryResult> expected =
      CollectResults(w, points, &via_wrapper);

  ExecutionEngine engine;  // defaults: serial, no pool
  EXPECT_EQ(engine.pool(), nullptr);
  MultiAttributeDetector via_engine(w, factory);
  ExpectSameResults(expected,
                    RunWithEngine(&engine, w, points, &via_engine),
                    "serial engine");
}

TEST(ExecutionEngineTest, ParallelPartitionedMatchesSerial) {
  // The acceptance property: at 2, 4 and 8 threads, a partition-parallel
  // run is byte-identical to the serial run on randomized multi-attribute
  // workloads and streams.
  for (const uint64_t seed : {101u, 202u, 303u}) {
    const Workload w = RandomMultiAttributeWorkload(seed);
    const std::vector<Point> points = RandomStream(200, 2, seed + 7);
    const auto factory = [](const Workload& sub) {
      return std::make_unique<SopDetector>(sub);
    };
    MultiAttributeDetector serial(w, factory);
    const std::vector<QueryResult> expected =
        CollectResults(w, points, &serial);
    for (const int threads : {2, 4, 8}) {
      ExecOptions options;
      options.num_threads = threads;
      ExecutionEngine engine(options);
      ASSERT_NE(engine.pool(), nullptr);
      EXPECT_EQ(engine.pool()->num_threads(), threads);
      MultiAttributeDetector parallel(w, factory);
      ExpectSameResults(
          expected, RunWithEngine(&engine, w, points, &parallel),
          "parallel x" + std::to_string(threads) + " seed " +
              std::to_string(seed));
      // The engine detaches its pool after the run.
      EXPECT_EQ(parallel.thread_pool(), nullptr);
    }
  }
}

TEST(ExecutionEngineTest, ParallelGroupedSopMatchesSerial) {
  // The Sec. 3.2 grouped strawman partitions by k-group; its children must
  // also fan out without changing the result stream.
  Workload w(WindowType::kCount);
  Rng rng(55);
  for (int i = 0; i < 6; ++i) {
    w.AddQuery(OutlierQuery(rng.UniformDouble(1.0, 4.0), 2 + i,
                            4 * rng.UniformInt(2, 5), 4));
  }
  const std::vector<Point> points = RandomStream(180, 2, 56);
  GroupedSopDetector serial(w);
  const std::vector<QueryResult> expected = CollectResults(w, points, &serial);
  for (const int threads : {2, 4}) {
    ExecOptions options;
    options.num_threads = threads;
    ExecutionEngine engine(options);
    GroupedSopDetector parallel(w);
    ExpectSameResults(expected, RunWithEngine(&engine, w, points, &parallel),
                      "grouped x" + std::to_string(threads));
  }
}

TEST(ExecutionEngineTest, EngineIsReusableAcrossRuns) {
  ExecOptions options;
  options.num_threads = 2;
  ExecutionEngine engine(options);
  const Workload w = RandomMultiAttributeWorkload(31);
  const auto factory = [](const Workload& sub) {
    return std::make_unique<SopDetector>(sub);
  };
  for (const uint64_t seed : {1u, 2u}) {
    const std::vector<Point> points = RandomStream(120, 2, seed);
    MultiAttributeDetector serial(w, factory);
    MultiAttributeDetector parallel(w, factory);
    ExpectSameResults(CollectResults(w, points, &serial),
                      RunWithEngine(&engine, w, points, &parallel),
                      "reuse seed " + std::to_string(seed));
  }
}

TEST(ExecutionEngineTest, ComputesLatencyPercentiles) {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(2.0, 3, 16, 4));
  SopDetector detector(w);
  ExecutionEngine engine;
  const RunMetrics metrics =
      engine.Run(w, RandomStream(120, 2, 9), &detector);
  EXPECT_EQ(metrics.num_batches, 30);
  EXPECT_GT(metrics.p50_batch_ms, 0.0);
  EXPECT_LE(metrics.p50_batch_ms, metrics.p95_batch_ms);
  EXPECT_LE(metrics.p95_batch_ms, metrics.max_batch_ms);
  EXPECT_LE(metrics.max_batch_ms, metrics.total_cpu_ms);
  EXPECT_NE(metrics.LatencyToString().find("p95"), std::string::npos);
}

TEST(ExecutionEngineTest, ZeroThreadsMeansHardwareConcurrency) {
  ExecOptions options;
  options.num_threads = 0;
  ExecutionEngine engine(options);
  // With one hardware thread the engine stays serial; otherwise the pool
  // matches the machine.
  if (std::thread::hardware_concurrency() > 1) {
    ASSERT_NE(engine.pool(), nullptr);
    EXPECT_EQ(engine.pool()->num_threads(),
              static_cast<int>(std::thread::hardware_concurrency()));
  } else {
    EXPECT_EQ(engine.pool(), nullptr);
  }
}

}  // namespace
}  // namespace sop
