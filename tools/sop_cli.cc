// sop_cli: run a multi-query outlier workload over a stream from the
// command line.
//
// Usage:
//   sop_cli --workload spec.txt (--data points.csv | --synthetic N | --stt N)
//           [--detector sop|sop-grid|grouped-sop|leap|mcod|mcod-grid|naive]
//           [--threads N] [--print-outliers] [--aggregate] [--max-print N]
//           [--seed S]
//
// The workload spec format is documented in sop/io/workload_parser.h.
// Prints run metrics (the paper's CPU/MEM measures plus per-batch latency
// percentiles) and, optionally, every emission's outliers. --threads N > 1
// fans partitioned detectors (multi-attribute workloads, grouped-sop) out
// across a worker pool; 0 means one thread per hardware core.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "sop/detector/engine.h"
#include "sop/detector/factory.h"
#include "sop/gen/stt.h"
#include "sop/gen/synthetic.h"
#include "sop/io/csv.h"
#include "sop/io/workload_parser.h"
#include "sop/report/aggregate.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --workload spec.txt (--data points.csv | --synthetic N |"
      " --stt N)\n"
      "          [--detector sop|sop-grid|grouped-sop|leap|mcod|mcod-grid|"
      "naive]\n"
      "          [--threads N] [--print-outliers] [--max-print N] "
      "[--seed S]\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sop;

  std::string workload_path;
  std::string data_path;
  int64_t synthetic_n = 0;
  int64_t stt_n = 0;
  DetectorKind kind = DetectorKind::kSop;
  bool print_outliers = false;
  bool aggregate = false;
  int64_t max_print = 20;
  uint64_t seed = 42;
  int num_threads = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      workload_path = next();
    } else if (arg == "--data") {
      data_path = next();
    } else if (arg == "--synthetic") {
      synthetic_n = std::atoll(next());
    } else if (arg == "--stt") {
      stt_n = std::atoll(next());
    } else if (arg == "--detector") {
      const char* name = next();
      if (!ParseDetectorKind(name, &kind)) {
        std::fprintf(stderr, "unknown detector: %s\n", name);
        return 2;
      }
    } else if (arg == "--print-outliers") {
      print_outliers = true;
    } else if (arg == "--aggregate") {
      aggregate = true;
    } else if (arg == "--max-print") {
      max_print = std::atoll(next());
    } else if (arg == "--seed") {
      seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--threads") {
      num_threads = static_cast<int>(std::atoll(next()));
      if (num_threads < 0) {
        std::fprintf(stderr, "--threads must be >= 0\n");
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  if (workload_path.empty()) {
    Usage(argv[0]);
    return 2;
  }
  Workload workload;
  std::string error;
  if (!io::LoadWorkloadSpec(workload_path, &workload, &error)) {
    std::fprintf(stderr, "workload error: %s\n", error.c_str());
    return 1;
  }

  std::unique_ptr<StreamSource> source;
  if (!data_path.empty()) {
    std::vector<Point> points;
    if (!io::LoadPointsCsv(data_path, &points, &error)) {
      std::fprintf(stderr, "data error: %s\n", error.c_str());
      return 1;
    }
    source = std::make_unique<VectorSource>(std::move(points));
  } else if (synthetic_n > 0) {
    gen::SyntheticOptions options;
    options.seed = seed;
    source = std::make_unique<gen::SyntheticSource>(synthetic_n, options);
  } else if (stt_n > 0) {
    gen::SttOptions options;
    options.seed = seed;
    source = std::make_unique<gen::SttSource>(stt_n, options);
  } else {
    std::fprintf(stderr, "no data source given\n");
    Usage(argv[0]);
    return 2;
  }

  std::unique_ptr<OutlierDetector> detector = CreateDetector(kind, workload);
  ExecOptions exec_options;
  exec_options.num_threads = num_threads;
  ExecutionEngine engine(exec_options);
  std::fprintf(stderr, "running %zu queries with detector '%s' (%d thread%s)"
               "...\n",
               workload.num_queries(), detector->name(),
               engine.pool() != nullptr ? engine.pool()->num_threads() : 1,
               engine.pool() != nullptr && engine.pool()->num_threads() > 1
                   ? "s"
                   : "");

  int64_t printed = 0;
  report::OutlierAggregator aggregator;
  const RunMetrics metrics = engine.Run(
      workload, source.get(), detector.get(), [&](const QueryResult& r) {
        if (aggregate) aggregator.Add(r);
        if (!print_outliers || r.outliers.empty()) return;
        if (printed++ >= max_print) return;
        std::printf("query %zu @ %lld:", r.query_index,
                    static_cast<long long>(r.boundary));
        size_t shown = 0;
        for (Seq s : r.outliers) {
          if (++shown > 16) {
            std::printf(" ... (%zu total)", r.outliers.size());
            break;
          }
          std::printf(" %lld", static_cast<long long>(s));
        }
        std::printf("\n");
      });

  if (aggregate) {
    // Per-point pivot (the paper's Alg. 3 output format) of the last few
    // boundaries.
    const std::vector<int64_t> boundaries = aggregator.Boundaries();
    const size_t show = std::min<size_t>(boundaries.size(), 3);
    for (size_t i = boundaries.size() - show; i < boundaries.size(); ++i) {
      std::printf("--- outliers at boundary %lld ---\n%s",
                  static_cast<long long>(boundaries[i]),
                  aggregator.ToString(boundaries[i]).c_str());
    }
    std::printf("flagged %zu distinct points across %zu point-windows\n",
                aggregator.NumDistinctPoints(),
                aggregator.NumFlaggedPointWindows());
  }
  std::printf("%s\n", metrics.ToString().c_str());
  std::printf("%s\n", metrics.LatencyToString().c_str());
  return 0;
}
