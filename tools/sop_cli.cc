// sop_cli: run a multi-query outlier workload over a stream from the
// command line.
//
// Usage:
//   sop_cli --workload spec.txt (--data points.csv | --synthetic N | --stt N)
//           [--detector NAME[,NAME...]] [--threads N] [--metrics-out PATH]
//           [--print-outliers] [--aggregate] [--max-print N] [--seed S]
//           [--on-bad-record fail|skip|clamp] [--quarantine PATH]
//           [--checkpoint PATH] [--checkpoint-every N] [--resume-from PATH]
//           [--queue N] [--overload block|drop-oldest]
//           [--churn-every N] [--kernel scalar|avx2|auto]
//           [--fault-rate SITE=RATE[,...]] [--fault-seed S] [--fault-max N]
//
// The workload spec format is documented in sop/io/workload_parser.h and
// detector names in sop/detector/factory.h. --detector takes a
// comma-separated list; every named detector runs over the identical
// stream in turn (the stream is materialized once), which is how
// side-by-side counter comparisons are made. Prints run metrics (the
// paper's CPU/MEM measures plus per-batch latency percentiles) and,
// optionally, every emission's outliers. --threads N > 1 fans partitioned
// detectors (multi-attribute workloads, grouped-sop) out across a worker
// pool; 0 means one thread per hardware core.
//
// --metrics-out PATH enables the observability layer and writes one JSON
// document containing, per detector run, the RunMetrics plus the full
// registry snapshot (per-subsystem and per-query counters). The registry
// is reset between runs so each snapshot is attributable to one detector.
//
// Resilience (DESIGN.md Sec. 12):
//   --on-bad-record selects the CSV ingest policy (stream/record_policy.h);
//     `skip` spools rejected raw lines to --quarantine when given. A load
//     whose surviving point set is empty exits nonzero rather than running
//     an empty stream.
//   --checkpoint PATH writes a crash-consistent run checkpoint every
//     --checkpoint-every batches; --resume-from PATH resumes one detector
//     (exactly one --detector) from such a file, producing the same
//     emissions the uninterrupted run would have.
//   --queue N pipelines ingest and detection through an N-batch queue;
//     --overload picks what a full queue does (block = backpressure,
//     drop-oldest = shed + flag degraded emissions).
//   --fault-rate arms the deterministic fault injector (common/fault.h),
//     e.g. --fault-rate source-read=0.01,checkpoint-bytes=1; --fault-seed
//     makes the failure schedule reproducible and --fault-max caps the
//     number of injected failures per site so retry loops terminate.
//
// Workload churn (DESIGN.md Sec. 14):
//   --churn-every N runs the workload through a dynamic SopSession instead
//     of the batch engine: after every N batches one query (round-robin) is
//     removed and re-registered. With 'sop'/'sop-grid' those churns ride
//     the session's overlay-swap path (no history replay); other detectors
//     rebuild-and-replay. Prints per-churn latency and the session's
//     change statistics, so the two regimes are directly comparable.
//     Incompatible with --resume-from/--checkpoint/--queue (engine-only).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "flags.h"
#include "sop/common/fault.h"
#include "sop/core/session.h"
#include "sop/detector/engine.h"
#include "sop/detector/factory.h"
#include "sop/detector/run_checkpoint.h"
#include "sop/gen/stt.h"
#include "sop/gen/synthetic.h"
#include "sop/io/csv.h"
#include "sop/io/workload_parser.h"
#include "sop/obs/export.h"
#include "sop/obs/metrics.h"
#include "sop/report/aggregate.h"
#include "sop/stream/window.h"

namespace {

// Session-mode run for --churn-every: streams `points` through a dynamic
// SopSession hosting `name`, removing + re-registering one query
// (round-robin) every `churn_every` batches. The change is realized by the
// next Advance, so that batch's latency is tracked separately from steady
// batches — it carries the overlay swap (sop/sop-grid) or the
// rebuild-and-replay (everything else).
int RunSessionChurn(const std::string& name, const sop::Workload& workload,
                    const std::vector<sop::Point>& points, int64_t churn_every,
                    bool print_outliers, int64_t max_print) {
  using namespace sop;
  using Clock = std::chrono::steady_clock;

  SopSession session(workload.window_type(), workload.metric(),
                     workload.MaxWindow());
  if (name == "sop" || name == "sop-grid") {
    SopDetector::Options options;
    options.use_grid_index = name == "sop-grid";
    session.UseSopDetector(options);
  } else {
    session.SetDetectorBuilder([name](const Workload& w) {
      return CreateDetector(name, w);
    });
  }
  std::vector<QueryId> ids;
  for (const OutlierQuery& query : workload.queries()) {
    ids.push_back(session.AddQuery(query));
  }

  std::fprintf(stderr,
               "churning %zu queries through a '%s' session "
               "(one remove+re-add every %lld batches)...\n",
               workload.num_queries(), name.c_str(),
               static_cast<long long>(churn_every));

  uint64_t batches = 0;
  uint64_t emissions = 0;
  uint64_t churns = 0;
  int64_t printed = 0;
  bool churn_pending = false;
  double steady_ms = 0.0, steady_ms_max = 0.0;
  double churn_ms = 0.0, churn_ms_max = 0.0;
  uint64_t steady_batches = 0, churn_batches = 0;

  auto ship = [&](std::vector<Point> chunk, int64_t boundary) {
    const auto t0 = Clock::now();
    const std::vector<SessionResult> results =
        session.Advance(std::move(chunk), boundary);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (churn_pending) {
      ++churn_batches;
      churn_ms += ms;
      churn_ms_max = std::max(churn_ms_max, ms);
      churn_pending = false;
    } else {
      ++steady_batches;
      steady_ms += ms;
      steady_ms_max = std::max(steady_ms_max, ms);
    }
    ++batches;
    for (const SessionResult& r : results) {
      if (r.outliers.empty()) continue;
      ++emissions;
      if (!print_outliers || printed >= max_print) continue;
      ++printed;
      std::printf("query %lld @ %lld:",
                  static_cast<long long>(r.query_id),
                  static_cast<long long>(r.boundary));
      size_t shown = 0;
      for (Seq s : r.outliers) {
        if (++shown > 16) {
          std::printf(" ... (%zu total)", r.outliers.size());
          break;
        }
        std::printf(" %lld", static_cast<long long>(s));
      }
      std::printf("\n");
    }
    if (batches % static_cast<uint64_t>(churn_every) == 0) {
      const size_t j = static_cast<size_t>(churns % ids.size());
      session.RemoveQuery(ids[j]);
      ids[j] = session.AddQuery(workload.query(j));
      ++churns;
      churn_pending = true;  // realized by the next Advance
    }
  };

  const int64_t span = workload.SlideGcd();
  if (workload.window_type() == WindowType::kCount) {
    // Count windows: boundary = cumulative point count, a multiple of the
    // slide gcd; a trailing partial batch cannot form a boundary.
    size_t start = 0;
    for (; start + static_cast<size_t>(span) <= points.size();
         start += static_cast<size_t>(span)) {
      ship(std::vector<Point>(
               points.begin() + static_cast<ptrdiff_t>(start),
               points.begin() + static_cast<ptrdiff_t>(start) +
                   static_cast<ptrdiff_t>(span)),
           static_cast<int64_t>(start) + span);
    }
    if (start < points.size()) {
      std::fprintf(stderr, "dropped %zu trailing points (< one slide gcd)\n",
                   points.size() - start);
    }
  } else {
    // Time windows: cut at multiples of the slide gcd, advancing through
    // empty spans, exactly like the engine.
    int64_t boundary = FirstBoundaryAtOrAfter(points.front().time + 1, span);
    std::vector<Point> chunk;
    for (const Point& p : points) {
      while (p.time >= boundary) {
        ship(std::move(chunk), boundary);
        chunk.clear();
        boundary += span;
      }
      chunk.push_back(p);
    }
    if (!chunk.empty()) ship(std::move(chunk), boundary);
  }

  const SessionChangeStats& change = session.change_stats();
  std::printf("[%s] churn: %llu batches, %llu non-empty emissions, "
              "%llu churns\n",
              name.c_str(), static_cast<unsigned long long>(batches),
              static_cast<unsigned long long>(emissions),
              static_cast<unsigned long long>(churns));
  std::printf("[%s] churn: steady batch mean %.3f ms max %.3f ms; "
              "change-realizing batch mean %.3f ms max %.3f ms\n",
              name.c_str(),
              steady_batches > 0 ? steady_ms / steady_batches : 0.0,
              steady_ms_max,
              churn_batches > 0 ? churn_ms / churn_batches : 0.0,
              churn_ms_max);
  std::printf("[%s] churn: %llu overlay swaps, %llu rebuilds "
              "(%llu basis extends), replayed %llu batches / %llu points\n",
              name.c_str(),
              static_cast<unsigned long long>(change.overlay_changes),
              static_cast<unsigned long long>(change.rebuilds),
              static_cast<unsigned long long>(change.basis_extends),
              static_cast<unsigned long long>(change.replayed_batches),
              static_cast<unsigned long long>(change.replayed_points));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sop;

  std::string workload_path;
  std::string data_path;
  std::string metrics_out;
  int64_t synthetic_n = 0;
  int64_t stt_n = 0;
  std::vector<std::string> detectors = {"sop"};
  bool print_outliers = false;
  bool aggregate = false;
  int64_t max_print = 20;
  uint64_t seed = 42;
  int num_threads = 1;
  io::CsvReadOptions csv_options;
  std::string checkpoint_path;
  int64_t checkpoint_every = 64;
  std::string resume_path;
  size_t queue_batches = 0;
  OverloadPolicy overload_policy = OverloadPolicy::kBlock;
  int64_t churn_every = 0;
  std::vector<std::string> fault_specs;
  uint64_t fault_seed = 1;
  int64_t fault_max = -1;

  cli::FlagSet flags(
      "Run a multi-query outlier workload over a stream. The workload spec\n"
      "format is documented in sop/io/workload_parser.h, detector names in\n"
      "sop/detector/factory.h; resilience and churn modes in DESIGN.md\n"
      "Sec. 12/14. Requires --workload plus one data source (--data,\n"
      "--synthetic or --stt).");
  flags.Str("--workload", &workload_path, "spec.txt", "workload spec file");
  flags.Str("--data", &data_path, "points.csv", "stream points CSV");
  flags.I64("--synthetic", &synthetic_n, "N",
            "generate N synthetic points instead of reading --data", 0);
  flags.I64("--stt", &stt_n, "N",
            "generate N STT points instead of reading --data", 0);
  flags.Flag("--detector", "NAME[,NAME...]",
             "detectors to run over the identical stream, in turn "
             "(default sop)",
             [&detectors](const std::string& v, std::string* error) {
               detectors = cli::SplitCommas(v);
               for (const std::string& name : detectors) {
                 if (!IsKnownDetector(name)) {
                   *error = UnknownDetectorMessage(name);
                   return false;
                 }
               }
               return true;
             });
  flags.Int("--threads", &num_threads, "N",
            "worker threads for partitioned detectors (0 = one per core)", 0);
  flags.Str("--metrics-out", &metrics_out, "PATH",
            "enable observability and write run metrics + counters JSON");
  flags.Bool("--print-outliers", &print_outliers,
             "print each emission's outliers");
  flags.Bool("--aggregate", &aggregate,
             "print the per-point outlier pivot of the last boundaries");
  flags.I64("--max-print", &max_print, "N", "emission print cap", 0);
  flags.U64("--seed", &seed, "S", "generator seed for --synthetic/--stt");
  flags.Flag("--on-bad-record", "fail|skip|clamp",
             "CSV ingest policy for malformed records",
             [&csv_options](const std::string& v, std::string* error) {
               if (!ParseRecordPolicy(v, &csv_options.policy)) {
                 *error = "unknown policy";
                 return false;
               }
               return true;
             });
  flags.Str("--quarantine", &csv_options.quarantine_path, "PATH",
            "spool records rejected by --on-bad-record skip here");
  flags.Str("--checkpoint", &checkpoint_path, "PATH",
            "write crash-consistent run checkpoints here");
  flags.I64("--checkpoint-every", &checkpoint_every, "N",
            "checkpoint every N batches", 1);
  flags.Str("--resume-from", &resume_path, "PATH",
            "resume one detector from a checkpoint file");
  flags.Size("--queue", &queue_batches, "N",
             "pipeline ingest/detection through an N-batch queue");
  flags.Flag("--overload", "block|drop-oldest",
             "full-queue policy (backpressure, or shed + flag degraded)",
             [&overload_policy](const std::string& v, std::string* error) {
               if (v == "block") {
                 overload_policy = OverloadPolicy::kBlock;
               } else if (v == "drop-oldest") {
                 overload_policy = OverloadPolicy::kDropOldest;
               } else {
                 *error = "unknown policy";
                 return false;
               }
               return true;
             });
  flags.I64("--churn-every", &churn_every, "N",
            "dynamic-session mode: remove + re-add one query every N "
            "batches",
            1);
  flags.StrList("--fault-rate", &fault_specs, "SITE=RATE[,...]",
                "arm the deterministic fault injector (common/fault.h)");
  flags.U64("--fault-seed", &fault_seed, "S", "fault schedule seed");
  flags.I64("--fault-max", &fault_max, "N",
            "cap injected failures per site (-1 = unlimited)", -1);
  cli::AddKernelFlag(&flags);
  int exit_code = 0;
  if (!flags.Parse(argc, argv, &exit_code)) return exit_code;

  if (workload_path.empty() || detectors.empty()) {
    flags.UsageError("--workload and at least one --detector are required");
    return 2;
  }
  Workload workload;
  std::string error;
  if (!io::LoadWorkloadSpec(workload_path, &workload, &error)) {
    std::fprintf(stderr, "workload error: %s\n", error.c_str());
    return 1;
  }

  // Materialize the stream once so every detector sees identical points.
  std::vector<Point> points;
  if (!data_path.empty()) {
    io::CsvReadStats stats;
    if (!io::LoadPointsCsv(data_path, csv_options, &points, &stats, &error)) {
      std::fprintf(stderr, "data error: %s\n", error.c_str());
      return 1;
    }
    if (stats.quarantined > 0 || stats.repaired > 0) {
      std::fprintf(stderr,
                   "ingest: accepted %llu, quarantined %llu, repaired %llu "
                   "record%s (policy %s)\n",
                   static_cast<unsigned long long>(stats.accepted),
                   static_cast<unsigned long long>(stats.quarantined),
                   static_cast<unsigned long long>(stats.repaired),
                   stats.repaired == 1 ? "" : "s",
                   RecordPolicyName(csv_options.policy));
    }
    if (points.empty()) {
      // A run over zero points would "succeed" vacuously; refuse instead.
      std::fprintf(stderr, "data error: %s yielded no usable points\n",
                   data_path.c_str());
      return 1;
    }
  } else if (synthetic_n > 0) {
    gen::SyntheticOptions options;
    options.seed = seed;
    gen::SyntheticSource source(synthetic_n, options);
    Point p;
    while (source.Next(&p)) points.push_back(std::move(p));
  } else if (stt_n > 0) {
    gen::SttOptions options;
    options.seed = seed;
    gen::SttSource source(stt_n, options);
    Point p;
    while (source.Next(&p)) points.push_back(std::move(p));
  } else {
    flags.UsageError("no data source given (--data, --synthetic or --stt)");
    return 2;
  }

  const bool want_metrics = !metrics_out.empty();
  if (want_metrics) {
    if (!obs::kCompiledIn) {
      std::fprintf(stderr,
                   "--metrics-out: observability compiled out (SOP_NO_OBS); "
                   "counters will be empty\n");
    }
    obs::SetEnabled(true);
    obs::MetricsRegistry::Global().Reset();
  }

  ExecOptions exec_options;
  exec_options.num_threads = num_threads;
  exec_options.checkpoint.path = checkpoint_path;
  exec_options.checkpoint.every_batches = checkpoint_every;
  exec_options.overload.max_queue_batches = queue_batches;
  exec_options.overload.policy = overload_policy;
  ExecutionEngine engine(exec_options);

  RunCheckpoint resume_cp;
  if (!resume_path.empty()) {
    if (detectors.size() != 1) {
      std::fprintf(stderr,
                   "--resume-from requires exactly one --detector (a "
                   "checkpoint belongs to one detector run)\n");
      return 2;
    }
    if (!LoadRunCheckpoint(resume_path, &resume_cp, &error)) {
      std::fprintf(stderr, "checkpoint error: %s\n", error.c_str());
      return 1;
    }
  }

  FaultInjector injector(fault_seed);
  bool inject = false;
  for (const std::string& spec : fault_specs) {
    if (!cli::ParseFaultRate(spec, &injector)) {
      std::fprintf(stderr, "--fault-rate: bad site=rate spec '%s'\n",
                   spec.c_str());
      return 2;
    }
    inject = true;
  }
  if (inject) {
    if (fault_max >= 0) {
      for (int i = 0; i < kNumFaultSites; ++i) {
        injector.SetMaxFailures(static_cast<FaultSite>(i), fault_max);
      }
    }
    std::fprintf(stderr, "fault injection armed (seed %llu)\n",
                 static_cast<unsigned long long>(fault_seed));
    FaultInjector::Arm(&injector);
  }

  if (churn_every > 0) {
    if (!resume_path.empty() || !checkpoint_path.empty() ||
        queue_batches > 0) {
      std::fprintf(stderr,
                   "--churn-every runs a dynamic session; drop "
                   "--resume-from/--checkpoint/--queue\n");
      if (inject) FaultInjector::Disarm();
      return 2;
    }
    if (want_metrics) {
      std::fprintf(stderr, "--metrics-out is ignored with --churn-every\n");
    }
    int rc = 0;
    for (const std::string& name : detectors) {
      rc = RunSessionChurn(name, workload, points, churn_every,
                           print_outliers, max_print);
      if (rc != 0) break;
    }
    if (inject) FaultInjector::Disarm();
    return rc;
  }

  std::string runs_json;
  for (const std::string& name : detectors) {
    std::unique_ptr<OutlierDetector> detector = CreateDetector(name, workload);
    std::fprintf(stderr,
                 "running %zu queries with detector '%s' (%d thread%s)...\n",
                 workload.num_queries(), detector->name(),
                 engine.pool() != nullptr ? engine.pool()->num_threads() : 1,
                 engine.pool() != nullptr && engine.pool()->num_threads() > 1
                     ? "s"
                     : "");

    int64_t printed = 0;
    report::OutlierAggregator aggregator;
    const ResultSink sink = [&](const QueryResult& r) {
      if (aggregate) aggregator.Add(r);
      if (!print_outliers || r.outliers.empty()) return;
      if (printed++ >= max_print) return;
      std::printf("query %zu @ %lld:%s", r.query_index,
                  static_cast<long long>(r.boundary),
                  r.degraded ? " (degraded)" : "");
      size_t shown = 0;
      for (Seq s : r.outliers) {
        if (++shown > 16) {
          std::printf(" ... (%zu total)", r.outliers.size());
          break;
        }
        std::printf(" %lld", static_cast<long long>(s));
      }
      std::printf("\n");
    };
    RunMetrics metrics;
    if (!resume_path.empty()) {
      VectorSource source(points);  // copy: the original stream from its start
      if (!engine.RunResumed(workload, &source, detector.get(), resume_cp,
                             &metrics, &error, sink)) {
        std::fprintf(stderr, "resume error: %s\n", error.c_str());
        if (inject) FaultInjector::Disarm();
        return 1;
      }
    } else {
      metrics = engine.Run(workload, points, detector.get(), sink);
    }

    if (aggregate) {
      // Per-point pivot (the paper's Alg. 3 output format) of the last few
      // boundaries.
      const std::vector<int64_t> boundaries = aggregator.Boundaries();
      const size_t show = std::min<size_t>(boundaries.size(), 3);
      for (size_t i = boundaries.size() - show; i < boundaries.size(); ++i) {
        std::printf("--- outliers at boundary %lld ---\n%s",
                    static_cast<long long>(boundaries[i]),
                    aggregator.ToString(boundaries[i]).c_str());
      }
      std::printf("flagged %zu distinct points across %zu point-windows\n",
                  aggregator.NumDistinctPoints(),
                  aggregator.NumFlaggedPointWindows());
    }
    std::printf("[%s] %s\n", name.c_str(), metrics.ToString().c_str());
    std::printf("[%s] %s\n", name.c_str(), metrics.LatencyToString().c_str());
    if (metrics.shed_batches > 0) {
      std::printf("[%s] overload shed %llu batch%s (%llu points), "
                  "%llu degraded emission%s\n",
                  name.c_str(),
                  static_cast<unsigned long long>(metrics.shed_batches),
                  metrics.shed_batches == 1 ? "" : "es",
                  static_cast<unsigned long long>(metrics.shed_points),
                  static_cast<unsigned long long>(metrics.degraded_emissions),
                  metrics.degraded_emissions == 1 ? "" : "s");
    }

    if (want_metrics) {
      // Snapshot-and-reset attributes the registry contents to this run.
      const obs::Snapshot snap = obs::MetricsRegistry::Global().TakeSnapshot();
      obs::MetricsRegistry::Global().Reset();
      if (!runs_json.empty()) runs_json += ",\n";
      runs_json += "    {\"detector\": \"" + obs::JsonEscape(name) +
                   "\", \"run\": " + metrics.ToJson() +
                   ", \"counters\": " + obs::ToJson(snap) + "}";
    }
  }

  if (inject) {
    FaultInjector::Disarm();
    for (int i = 0; i < kNumFaultSites; ++i) {
      const auto site = static_cast<FaultSite>(i);
      if (injector.consulted(site) == 0) continue;
      std::fprintf(stderr,
                   "fault site %-16s injected %lld of %lld decisions\n",
                   FaultSiteName(site),
                   static_cast<long long>(injector.injected(site)),
                   static_cast<long long>(injector.consulted(site)));
    }
  }

  if (want_metrics) {
    std::string doc = "{\n  \"workload\": {\"path\": \"" +
                      obs::JsonEscape(workload_path) +
                      "\", \"num_queries\": " +
                      std::to_string(workload.num_queries()) +
                      ", \"window_type\": \"" +
                      (workload.window_type() == WindowType::kCount ? "count"
                                                                    : "time") +
                      "\"},\n  \"runs\": [\n" + runs_json + "\n  ]\n}\n";
    std::ofstream out(metrics_out, std::ios::binary);
    if (!out || !(out << doc) || !out.flush()) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote metrics to %s\n", metrics_out.c_str());
  }
  return 0;
}
