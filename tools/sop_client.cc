// sop_client: subscribe outlier queries on a running sop_server and stream
// a point file through it, printing every emission.
//
// Usage:
//   sop_client --port P [--host H] --subscribe R,K,WIN,SLIDE [...]
//              --data points.csv [--batch B | --span S] [--max-print N]
//              [--churn-every N] [--reconnect HOST:PORT[,...]]
//              [--resume-state PATH]
//   sop_client --port P [--host H] --ping
//
// The client subscribes every --subscribe query (repeatable; parameters
// match one workload spec line), then slices the CSV stream into ingest
// batches the same way ExecutionEngine slices its input: count windows cut
// every B points with the cumulative point count as the boundary; time
// windows cut at multiples of S (default: the gcd of the subscribed
// slides), advancing through empty spans. Each batch's emissions are
// printed as they arrive — the server delivers them ahead of the batch's
// ack, so output is in stream order.
//
// --churn-every N exercises the server's incremental workload path: after
// every N ingested batches one subscription (round-robin) is dropped and
// re-registered, and the round-trip latency of the re-subscribe is
// reported at the end. Against a sop/sop-grid server these churns are
// overlay swaps (no history replay) — compare the same run against
// --exact-basis or another detector to see the rebuild cost.
//
// --reconnect arms transparent recovery (DESIGN.md Sec. 16): a dead
// connection mid-stream is ridden out by failing over across the listed
// endpoints (e.g. a primary and its hot standby), resuming every
// subscription from its high-water boundary and re-ingesting the unacked
// batch tail — emissions stay exactly-once across the failover.
//
// --resume-state PATH persists per-query high-water marks ("r k win slide
// hwm" lines) across *process* restarts: a rerun subscribes with the saved
// boundary and the server replays only what this client has not yet seen.
//
// --ping probes a server's health instead of streaming: prints its role
// (primary/standby), stream position and queue depths, then exits.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include "flags.h"
#include "sop/io/csv.h"
#include "sop/net/client.h"
#include "sop/stream/window.h"

namespace {

// Query parameters as a resume-state key (ids are connection-scoped; the
// parameters are what survives a restart).
using QueryKey = std::tuple<double, int64_t, int64_t, int64_t>;

bool ParseEndpoint(const std::string& spec, sop::net::Endpoint* out) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  char* end = nullptr;
  const long port = std::strtol(spec.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || port <= 0 || port > 65535) {
    return false;
  }
  out->host = spec.substr(0, colon);
  out->port = static_cast<int>(port);
  return true;
}

// Resume-state file: one "r k win slide hwm" line per query. A missing
// file is an empty state (first run); malformed tails are ignored.
std::map<QueryKey, int64_t> LoadResumeState(const std::string& path) {
  std::map<QueryKey, int64_t> state;
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return state;
  double r = 0.0;
  long long k = 0, win = 0, slide = 0, hwm = 0;
  while (std::fscanf(f, "%lf %lld %lld %lld %lld", &r, &k, &win, &slide,
                     &hwm) == 5) {
    state[QueryKey(r, k, win, slide)] = hwm;
  }
  std::fclose(f);
  return state;
}

bool SaveResumeState(const std::string& path,
                     const std::map<QueryKey, int64_t>& state) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  for (const auto& [key, hwm] : state) {
    if (hwm == sop::net::kNoResume) continue;
    std::fprintf(f, "%.17g %lld %lld %lld %lld\n", std::get<0>(key),
                 static_cast<long long>(std::get<1>(key)),
                 static_cast<long long>(std::get<2>(key)),
                 static_cast<long long>(std::get<3>(key)),
                 static_cast<long long>(hwm));
  }
  return std::fclose(f) == 0;
}

bool ParseQuery(const std::string& spec, sop::OutlierQuery* query) {
  double r = 0.0;
  long long k = 0, win = 0, slide = 0;
  if (std::sscanf(spec.c_str(), "%lf,%lld,%lld,%lld", &r, &k, &win,
                  &slide) != 4) {
    return false;
  }
  query->r = r;
  query->k = k;
  query->win = win;
  query->slide = slide;
  query->attribute_set = 0;
  return true;
}

void PrintEmissions(sop::net::SopClient* client, int64_t max_print,
                    int64_t* printed, uint64_t* total) {
  for (const sop::net::EmissionMsg& e : client->TakeEmissions()) {
    ++*total;
    if (e.outliers.empty() || *printed >= max_print) continue;
    ++*printed;
    std::printf("query %lld @ %lld:%s", static_cast<long long>(e.query_id),
                static_cast<long long>(e.boundary),
                e.degraded ? " (degraded)" : "");
    size_t shown = 0;
    for (const sop::Seq s : e.outliers) {
      if (++shown > 16) {
        std::printf(" ... (%zu total)", e.outliers.size());
        break;
      }
      std::printf(" %lld", static_cast<long long>(s));
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sop;

  std::string host = "127.0.0.1";
  int port = 0;
  std::string data_path;
  std::vector<OutlierQuery> queries;
  int64_t batch = 128;
  int64_t span = 0;
  int64_t max_print = 20;
  int64_t churn_every = 0;
  bool want_ping = false;
  bool reconnect_armed = false;
  std::vector<net::Endpoint> endpoints;
  std::string resume_state_path;

  cli::FlagSet flags(
      "Subscribe outlier queries on a running sop_server and stream a point\n"
      "file through it, printing every emission. --subscribe is repeatable;\n"
      "its parameters match one workload spec line. --churn-every N drops\n"
      "and re-registers one subscription (round-robin) every N batches and\n"
      "reports the re-subscribe round-trip latency.\n"
      "\n"
      "--reconnect rides out server failures by failing over across the\n"
      "listed endpoints (primary + standby), resuming subscriptions from\n"
      "their high-water boundaries so emissions stay exactly-once.\n"
      "--resume-state persists those boundaries across client restarts.\n"
      "--ping probes a server's health (role, position, queue depths)\n"
      "instead of streaming.");
  flags.Str("--host", &host, "H", "server address");
  flags.Int("--port", &port, "P", "server port (required)", 0);
  flags.Str("--data", &data_path, "points.csv", "stream points CSV");
  flags.Flag("--subscribe", "R,K,WIN,SLIDE",
             "subscribe one outlier query (repeatable)",
             [&queries](const std::string& v, std::string* error) {
               OutlierQuery query;
               if (!ParseQuery(v, &query)) {
                 *error = "expect R,K,WIN,SLIDE";
                 return false;
               }
               queries.push_back(query);
               return true;
             });
  flags.I64("--batch", &batch, "B", "points per ingest batch (count windows)",
            1);
  flags.I64("--span", &span, "S",
            "boundary span for time windows (default: slide gcd)", 1);
  flags.I64("--max-print", &max_print, "N", "emission print cap", 0);
  flags.I64("--churn-every", &churn_every, "N",
            "drop + re-subscribe one query every N batches", 1);
  flags.Flag("--reconnect", "HOST:PORT[,...]",
             "ride out server failures: fail over across these endpoints "
             "and resume exactly-once",
             [&](const std::string& v, std::string* error) {
               for (const std::string& spec : cli::SplitCommas(v)) {
                 net::Endpoint ep;
                 if (!ParseEndpoint(spec, &ep)) {
                   *error = "bad endpoint '" + spec + "' (expect HOST:PORT)";
                   return false;
                 }
                 endpoints.push_back(ep);
               }
               reconnect_armed = true;
               return true;
             });
  flags.Str("--resume-state", &resume_state_path, "PATH",
            "persist per-query high-water marks here; a rerun resumes "
            "from them");
  flags.Bool("--ping", &want_ping,
             "probe the server's health (role, stream position, queue "
             "depths) and exit");
  int exit_code = 0;
  if (!flags.Parse(argc, argv, &exit_code)) return exit_code;
  if (want_ping) {
    if (port <= 0) {
      flags.UsageError("--ping requires --port");
      return 2;
    }
    net::SopClient client;
    std::string error;
    if (!client.Connect(host, port, &error)) {
      std::fprintf(stderr, "connect error: %s\n", error.c_str());
      return 1;
    }
    net::PongMsg pong;
    if (!client.Ping(&pong, &error)) {
      std::fprintf(stderr, "ping error: %s\n", error.c_str());
      return 1;
    }
    std::printf("%s:%d is %s\n", host.c_str(), port,
                net::ServerRoleName(static_cast<net::ServerRole>(pong.role)));
    if (pong.last_boundary == net::kNoResume) {
      std::printf("last boundary: none (no batches yet)\n");
    } else {
      std::printf("last boundary: %lld\n",
                  static_cast<long long>(pong.last_boundary));
    }
    std::printf("queues: %llu ingest batches, %llu emission frames; "
                "%llu connections\n",
                static_cast<unsigned long long>(pong.ingest_queue_depth),
                static_cast<unsigned long long>(pong.send_queue_depth),
                static_cast<unsigned long long>(pong.active_connections));
    return 0;
  }
  if (port <= 0 || data_path.empty() || queries.empty()) {
    flags.UsageError("--port, --data and at least one --subscribe are "
                     "required");
    return 2;
  }

  std::vector<Point> points;
  std::string error;
  if (!io::LoadPointsCsv(data_path, &points, &error)) {
    std::fprintf(stderr, "data error: %s\n", error.c_str());
    return 1;
  }
  if (points.empty()) {
    std::fprintf(stderr, "data error: %s yielded no points\n",
                 data_path.c_str());
    return 1;
  }

  net::SopClient client;
  if (!client.Connect(host, port, &error)) {
    std::fprintf(stderr, "connect error: %s\n", error.c_str());
    return 1;
  }
  if (reconnect_armed) {
    net::ReconnectOptions ropt;
    ropt.endpoints = endpoints;
    client.EnableReconnect(std::move(ropt));
  }
  const bool count_windows =
      client.server_info().window_type ==
      static_cast<uint32_t>(WindowType::kCount);
  std::fprintf(stderr, "connected: detector '%s', %s windows\n",
               client.server_info().detector.c_str(),
               count_windows ? "count" : "time");

  std::map<QueryKey, int64_t> resume_state;
  if (!resume_state_path.empty()) {
    resume_state = LoadResumeState(resume_state_path);
  }

  std::vector<int64_t> ids;
  for (const OutlierQuery& query : queries) {
    const QueryKey key(query.r, query.k, query.win, query.slide);
    const auto resume = resume_state.find(key);
    const int64_t resume_from =
        resume == resume_state.end() ? net::kNoResume : resume->second;
    const int64_t id = client.Subscribe(query, resume_from, &error);
    if (id == 0) {
      std::fprintf(stderr, "subscribe error: %s\n", error.c_str());
      return 1;
    }
    ids.push_back(id);
    std::fprintf(stderr, "subscribed query %lld (r=%g k=%lld win=%lld "
                 "slide=%lld)\n",
                 static_cast<long long>(id), query.r,
                 static_cast<long long>(query.k),
                 static_cast<long long>(query.win),
                 static_cast<long long>(query.slide));
    if (resume_from != net::kNoResume) {
      std::fprintf(stderr,
                   "  resumed past boundary %lld: %llu replayed%s\n",
                   static_cast<long long>(resume_from),
                   static_cast<unsigned long long>(client.last_replayed()),
                   client.last_gap() ? " (gap: ring wrapped, next emission "
                                       "flagged degraded)"
                                     : "");
    }
  }

  int64_t printed = 0;
  uint64_t total_emissions = 0;
  uint64_t batches = 0;
  uint64_t churns = 0;
  double churn_us_total = 0.0;
  double churn_us_max = 0.0;

  // Drop one subscription (round-robin) and re-register it, timing the
  // unsubscribe+subscribe round trip — the client-visible cost of one
  // workload change on the server.
  auto churn = [&]() -> bool {
    const size_t j = static_cast<size_t>(churns % ids.size());
    const auto t0 = std::chrono::steady_clock::now();
    if (!client.Unsubscribe(ids[j], &error)) {
      std::fprintf(stderr, "churn unsubscribe error: %s\n", error.c_str());
      return false;
    }
    const int64_t id = client.Subscribe(queries[j], &error);
    if (id == 0) {
      std::fprintf(stderr, "churn resubscribe error: %s\n", error.c_str());
      return false;
    }
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    ids[j] = id;
    ++churns;
    churn_us_total += us;
    churn_us_max = std::max(churn_us_max, us);
    return true;
  };

  auto ship = [&](std::vector<Point> chunk, int64_t boundary) -> bool {
    net::IngestAckMsg ack;
    if (!client.Ingest(boundary, chunk, &ack, &error)) {
      std::fprintf(stderr, "ingest error: %s\n", error.c_str());
      return false;
    }
    if (ack.accepted != chunk.size()) {
      for (const net::ErrorMsg& e : client.TakeErrors()) {
        std::fprintf(stderr, "server: %s\n", e.message.c_str());
      }
      return false;
    }
    ++batches;
    PrintEmissions(&client, max_print, &printed, &total_emissions);
    if (churn_every > 0 && batches % static_cast<uint64_t>(churn_every) == 0) {
      return churn();
    }
    return true;
  };

  bool ok = true;
  if (count_windows) {
    // Count windows: cut every --batch points, boundary = cumulative count
    // (the same slicing ExecutionEngine uses with batch_span = SlideGcd),
    // offset by the server's stream position (boundaries are global).
    int64_t shipped = client.server_info().last_boundary == INT64_MIN
                          ? 0
                          : client.server_info().last_boundary;
    for (size_t start = 0; ok && start < points.size();
         start += static_cast<size_t>(batch)) {
      const size_t end =
          std::min(points.size(), start + static_cast<size_t>(batch));
      shipped += static_cast<int64_t>(end - start);
      ok = ship(std::vector<Point>(points.begin() + start,
                                   points.begin() + end),
                shipped);
    }
  } else {
    // Time windows: cut at multiples of --span (default: subscribed slide
    // gcd), advancing through empty spans, exactly like the engine.
    if (span == 0) {
      span = 0;
      for (const OutlierQuery& query : queries) {
        span = span == 0 ? query.slide : std::gcd(span, query.slide);
      }
    }
    int64_t boundary = FirstBoundaryAtOrAfter(points.front().time + 1, span);
    std::vector<Point> chunk;
    for (size_t i = 0; ok && i < points.size(); ++i) {
      while (points[i].time >= boundary) {
        ok = ship(std::move(chunk), boundary);
        chunk.clear();
        boundary += span;
        if (!ok) break;
      }
      if (ok) chunk.push_back(points[i]);
    }
    if (ok && !chunk.empty()) ok = ship(std::move(chunk), boundary);
  }
  // Persist high-water marks before retiring the subscriptions (they are
  // per live subscription), keeping a prior mark when this run saw no new
  // emissions for a query.
  if (!resume_state_path.empty()) {
    for (size_t i = 0; i < ids.size(); ++i) {
      const int64_t hwm = client.high_water(ids[i]);
      if (hwm == net::kNoResume) continue;
      const OutlierQuery& q = queries[i];
      resume_state[QueryKey(q.r, q.k, q.win, q.slide)] = hwm;
    }
    if (!SaveResumeState(resume_state_path, resume_state)) {
      std::fprintf(stderr, "resume-state error: cannot write %s\n",
                   resume_state_path.c_str());
      if (ok) return 1;
    }
  }
  if (!ok) return 1;

  for (const int64_t id : ids) {
    if (!client.Unsubscribe(id, &error)) {
      std::fprintf(stderr, "unsubscribe error: %s\n", error.c_str());
      return 1;
    }
  }
  std::fprintf(stderr,
               "streamed %zu points in %llu batches; %llu emissions "
               "(sent %llu bytes, received %llu)\n",
               points.size(), static_cast<unsigned long long>(batches),
               static_cast<unsigned long long>(total_emissions),
               static_cast<unsigned long long>(client.bytes_sent()),
               static_cast<unsigned long long>(client.bytes_received()));
  if (reconnect_armed) {
    std::fprintf(stderr,
                 "survived %llu reconnects (%llu duplicate emissions "
                 "suppressed)\n",
                 static_cast<unsigned long long>(client.reconnects()),
                 static_cast<unsigned long long>(client.dropped_duplicates()));
  }
  if (churns > 0) {
    std::fprintf(stderr,
                 "churned %llu subscriptions: mean %.1f us, max %.1f us "
                 "per unsubscribe+resubscribe\n",
                 static_cast<unsigned long long>(churns),
                 churn_us_total / static_cast<double>(churns), churn_us_max);
  }
  return 0;
}
