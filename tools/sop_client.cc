// sop_client: subscribe outlier queries on a running sop_server and stream
// a point file through it, printing every emission.
//
// Usage:
//   sop_client --port P [--host H] --subscribe R,K,WIN,SLIDE [...]
//              --data points.csv [--batch B | --span S] [--max-print N]
//              [--churn-every N]
//
// The client subscribes every --subscribe query (repeatable; parameters
// match one workload spec line), then slices the CSV stream into ingest
// batches the same way ExecutionEngine slices its input: count windows cut
// every B points with the cumulative point count as the boundary; time
// windows cut at multiples of S (default: the gcd of the subscribed
// slides), advancing through empty spans. Each batch's emissions are
// printed as they arrive — the server delivers them ahead of the batch's
// ack, so output is in stream order.
//
// --churn-every N exercises the server's incremental workload path: after
// every N ingested batches one subscription (round-robin) is dropped and
// re-registered, and the round-trip latency of the re-subscribe is
// reported at the end. Against a sop/sop-grid server these churns are
// overlay swaps (no history replay) — compare the same run against
// --exact-basis or another detector to see the rebuild cost.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "flags.h"
#include "sop/io/csv.h"
#include "sop/net/client.h"
#include "sop/stream/window.h"

namespace {

bool ParseQuery(const std::string& spec, sop::OutlierQuery* query) {
  double r = 0.0;
  long long k = 0, win = 0, slide = 0;
  if (std::sscanf(spec.c_str(), "%lf,%lld,%lld,%lld", &r, &k, &win,
                  &slide) != 4) {
    return false;
  }
  query->r = r;
  query->k = k;
  query->win = win;
  query->slide = slide;
  query->attribute_set = 0;
  return true;
}

void PrintEmissions(sop::net::SopClient* client, int64_t max_print,
                    int64_t* printed, uint64_t* total) {
  for (const sop::net::EmissionMsg& e : client->TakeEmissions()) {
    ++*total;
    if (e.outliers.empty() || *printed >= max_print) continue;
    ++*printed;
    std::printf("query %lld @ %lld:%s", static_cast<long long>(e.query_id),
                static_cast<long long>(e.boundary),
                e.degraded ? " (degraded)" : "");
    size_t shown = 0;
    for (const sop::Seq s : e.outliers) {
      if (++shown > 16) {
        std::printf(" ... (%zu total)", e.outliers.size());
        break;
      }
      std::printf(" %lld", static_cast<long long>(s));
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sop;

  std::string host = "127.0.0.1";
  int port = 0;
  std::string data_path;
  std::vector<OutlierQuery> queries;
  int64_t batch = 128;
  int64_t span = 0;
  int64_t max_print = 20;
  int64_t churn_every = 0;

  cli::FlagSet flags(
      "Subscribe outlier queries on a running sop_server and stream a point\n"
      "file through it, printing every emission. --subscribe is repeatable;\n"
      "its parameters match one workload spec line. --churn-every N drops\n"
      "and re-registers one subscription (round-robin) every N batches and\n"
      "reports the re-subscribe round-trip latency.");
  flags.Str("--host", &host, "H", "server address");
  flags.Int("--port", &port, "P", "server port (required)", 0);
  flags.Str("--data", &data_path, "points.csv", "stream points CSV");
  flags.Flag("--subscribe", "R,K,WIN,SLIDE",
             "subscribe one outlier query (repeatable)",
             [&queries](const std::string& v, std::string* error) {
               OutlierQuery query;
               if (!ParseQuery(v, &query)) {
                 *error = "expect R,K,WIN,SLIDE";
                 return false;
               }
               queries.push_back(query);
               return true;
             });
  flags.I64("--batch", &batch, "B", "points per ingest batch (count windows)",
            1);
  flags.I64("--span", &span, "S",
            "boundary span for time windows (default: slide gcd)", 1);
  flags.I64("--max-print", &max_print, "N", "emission print cap", 0);
  flags.I64("--churn-every", &churn_every, "N",
            "drop + re-subscribe one query every N batches", 1);
  int exit_code = 0;
  if (!flags.Parse(argc, argv, &exit_code)) return exit_code;
  if (port <= 0 || data_path.empty() || queries.empty()) {
    flags.UsageError("--port, --data and at least one --subscribe are "
                     "required");
    return 2;
  }

  std::vector<Point> points;
  std::string error;
  if (!io::LoadPointsCsv(data_path, &points, &error)) {
    std::fprintf(stderr, "data error: %s\n", error.c_str());
    return 1;
  }
  if (points.empty()) {
    std::fprintf(stderr, "data error: %s yielded no points\n",
                 data_path.c_str());
    return 1;
  }

  net::SopClient client;
  if (!client.Connect(host, port, &error)) {
    std::fprintf(stderr, "connect error: %s\n", error.c_str());
    return 1;
  }
  const bool count_windows =
      client.server_info().window_type ==
      static_cast<uint32_t>(WindowType::kCount);
  std::fprintf(stderr, "connected: detector '%s', %s windows\n",
               client.server_info().detector.c_str(),
               count_windows ? "count" : "time");

  std::vector<int64_t> ids;
  for (const OutlierQuery& query : queries) {
    const int64_t id = client.Subscribe(query, &error);
    if (id == 0) {
      std::fprintf(stderr, "subscribe error: %s\n", error.c_str());
      return 1;
    }
    ids.push_back(id);
    std::fprintf(stderr, "subscribed query %lld (r=%g k=%lld win=%lld "
                 "slide=%lld)\n",
                 static_cast<long long>(id), query.r,
                 static_cast<long long>(query.k),
                 static_cast<long long>(query.win),
                 static_cast<long long>(query.slide));
  }

  int64_t printed = 0;
  uint64_t total_emissions = 0;
  uint64_t batches = 0;
  uint64_t churns = 0;
  double churn_us_total = 0.0;
  double churn_us_max = 0.0;

  // Drop one subscription (round-robin) and re-register it, timing the
  // unsubscribe+subscribe round trip — the client-visible cost of one
  // workload change on the server.
  auto churn = [&]() -> bool {
    const size_t j = static_cast<size_t>(churns % ids.size());
    const auto t0 = std::chrono::steady_clock::now();
    if (!client.Unsubscribe(ids[j], &error)) {
      std::fprintf(stderr, "churn unsubscribe error: %s\n", error.c_str());
      return false;
    }
    const int64_t id = client.Subscribe(queries[j], &error);
    if (id == 0) {
      std::fprintf(stderr, "churn resubscribe error: %s\n", error.c_str());
      return false;
    }
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    ids[j] = id;
    ++churns;
    churn_us_total += us;
    churn_us_max = std::max(churn_us_max, us);
    return true;
  };

  auto ship = [&](std::vector<Point> chunk, int64_t boundary) -> bool {
    net::IngestAckMsg ack;
    if (!client.Ingest(boundary, chunk, &ack, &error)) {
      std::fprintf(stderr, "ingest error: %s\n", error.c_str());
      return false;
    }
    if (ack.accepted != chunk.size()) {
      for (const net::ErrorMsg& e : client.TakeErrors()) {
        std::fprintf(stderr, "server: %s\n", e.message.c_str());
      }
      return false;
    }
    ++batches;
    PrintEmissions(&client, max_print, &printed, &total_emissions);
    if (churn_every > 0 && batches % static_cast<uint64_t>(churn_every) == 0) {
      return churn();
    }
    return true;
  };

  bool ok = true;
  if (count_windows) {
    // Count windows: cut every --batch points, boundary = cumulative count
    // (the same slicing ExecutionEngine uses with batch_span = SlideGcd),
    // offset by the server's stream position (boundaries are global).
    int64_t shipped = client.server_info().last_boundary == INT64_MIN
                          ? 0
                          : client.server_info().last_boundary;
    for (size_t start = 0; ok && start < points.size();
         start += static_cast<size_t>(batch)) {
      const size_t end =
          std::min(points.size(), start + static_cast<size_t>(batch));
      shipped += static_cast<int64_t>(end - start);
      ok = ship(std::vector<Point>(points.begin() + start,
                                   points.begin() + end),
                shipped);
    }
  } else {
    // Time windows: cut at multiples of --span (default: subscribed slide
    // gcd), advancing through empty spans, exactly like the engine.
    if (span == 0) {
      span = 0;
      for (const OutlierQuery& query : queries) {
        span = span == 0 ? query.slide : std::gcd(span, query.slide);
      }
    }
    int64_t boundary = FirstBoundaryAtOrAfter(points.front().time + 1, span);
    std::vector<Point> chunk;
    for (size_t i = 0; ok && i < points.size(); ++i) {
      while (points[i].time >= boundary) {
        ok = ship(std::move(chunk), boundary);
        chunk.clear();
        boundary += span;
        if (!ok) break;
      }
      if (ok) chunk.push_back(points[i]);
    }
    if (ok && !chunk.empty()) ok = ship(std::move(chunk), boundary);
  }
  if (!ok) return 1;

  for (const int64_t id : ids) {
    if (!client.Unsubscribe(id, &error)) {
      std::fprintf(stderr, "unsubscribe error: %s\n", error.c_str());
      return 1;
    }
  }
  std::fprintf(stderr,
               "streamed %zu points in %llu batches; %llu emissions "
               "(sent %llu bytes, received %llu)\n",
               points.size(), static_cast<unsigned long long>(batches),
               static_cast<unsigned long long>(total_emissions),
               static_cast<unsigned long long>(client.bytes_sent()),
               static_cast<unsigned long long>(client.bytes_received()));
  if (churns > 0) {
    std::fprintf(stderr,
                 "churned %llu subscriptions: mean %.1f us, max %.1f us "
                 "per unsubscribe+resubscribe\n",
                 static_cast<unsigned long long>(churns),
                 churn_us_total / static_cast<double>(churns), churn_us_max);
  }
  return 0;
}
