// sop_datagen: materialize benchmark datasets and workload specs to disk,
// for use with sop_cli or external tooling.
//
// Usage:
//   sop_datagen --kind synthetic|stt --n N --out points.csv [--seed S]
//               [--dims D] [--outlier-rate F]
//   sop_datagen --kind workload --case A..G --queries Q --out spec.txt
//               [--seed S] [--window-type count|time]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sop/gen/stt.h"
#include "sop/gen/synthetic.h"
#include "sop/gen/workload_gen.h"
#include "sop/io/csv.h"
#include "sop/io/workload_parser.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --kind synthetic|stt --n N --out points.csv [--seed S]\n"
      "          [--dims D] [--outlier-rate F]\n"
      "       %s --kind workload --case A..G --queries Q --out spec.txt\n"
      "          [--seed S] [--window-type count|time]\n",
      argv0, argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sop;

  std::string kind;
  std::string out_path;
  std::string wcase_name = "G";
  std::string window_type_name = "count";
  int64_t n = 0;
  size_t queries = 100;
  uint64_t seed = 42;
  int dims = 2;
  double outlier_rate = 0.03;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--kind") {
      kind = next();
    } else if (arg == "--n") {
      n = std::atoll(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--seed") {
      seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--dims") {
      dims = std::atoi(next());
    } else if (arg == "--outlier-rate") {
      outlier_rate = std::atof(next());
    } else if (arg == "--case") {
      wcase_name = next();
    } else if (arg == "--queries") {
      queries = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--window-type") {
      window_type_name = next();
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (out_path.empty()) {
    Usage(argv[0]);
    return 2;
  }

  std::string error;
  if (kind == "synthetic" || kind == "stt") {
    if (n <= 0) {
      std::fprintf(stderr, "--n must be positive\n");
      return 2;
    }
    std::vector<Point> points;
    if (kind == "synthetic") {
      gen::SyntheticOptions options;
      options.seed = seed;
      options.dimensions = dims;
      options.outlier_rate = outlier_rate;
      points = gen::GenerateSynthetic(n, options);
    } else {
      gen::SttOptions options;
      options.seed = seed;
      options.anomaly_rate = outlier_rate;
      points = gen::GenerateStt(n, options);
    }
    if (!io::SavePointsCsv(out_path, points, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu %s points to %s\n", points.size(),
                 kind.c_str(), out_path.c_str());
    return 0;
  }

  if (kind == "workload") {
    gen::WorkloadCase wcase;
    if (!gen::ParseWorkloadCase(wcase_name, &wcase)) {
      std::fprintf(stderr, "bad --case %s (expect A..G)\n",
                   wcase_name.c_str());
      return 2;
    }
    const WindowType type =
        window_type_name == "time" ? WindowType::kTime : WindowType::kCount;
    gen::WorkloadGenOptions options;
    options.seed = seed;
    const Workload workload =
        gen::GenerateWorkload(wcase, queries, type, options);
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    const std::string spec = io::FormatWorkloadSpec(workload);
    std::fwrite(spec.data(), 1, spec.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %zu case-%s queries to %s\n", queries,
                 wcase_name.c_str(), out_path.c_str());
    return 0;
  }

  std::fprintf(stderr, "unknown --kind %s\n", kind.c_str());
  Usage(argv[0]);
  return 2;
}
