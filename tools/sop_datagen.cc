// sop_datagen: materialize benchmark datasets and workload specs to disk,
// or stream points at a controlled rate for serving-plane load tests.
//
// Usage:
//   sop_datagen --kind synthetic|stt --n N --out points.csv [--seed S]
//               [--dims D] [--outlier-rate F] [--hotspot FRAC]
//   sop_datagen --kind synthetic|stt --n N --out - [--rate P] [--batch B]
//   sop_datagen --kind synthetic|stt --n N --connect HOST:PORT
//               [--rate P] [--batch B]
//   sop_datagen --kind workload --case A..G --queries Q --out spec.txt
//               [--seed S] [--window-type count|time]
//
// Streaming modes: `--out -` writes CSV to stdout in --batch sized chunks;
// `--connect` speaks the sop wire protocol (net/client.h) and pushes each
// chunk as one ingest batch, deriving boundaries from the server's window
// type (cumulative point count, or point time). `--rate P` paces either
// mode to P points/second against absolute deadlines, so jitter does not
// accumulate; 0 (default) streams at full speed.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "flags.h"
#include "sop/gen/stt.h"
#include "sop/gen/synthetic.h"
#include "sop/gen/workload_gen.h"
#include "sop/io/csv.h"
#include "sop/io/workload_parser.h"
#include "sop/net/client.h"

namespace {

// Paces a stream to `rate` points/sec against absolute deadlines.
class Throttle {
 public:
  explicit Throttle(double rate)
      : rate_(rate), start_(std::chrono::steady_clock::now()) {}

  // Blocks until `emitted` points are allowed to have left.
  void Wait(int64_t emitted) const {
    if (rate_ <= 0.0) return;
    const auto deadline =
        start_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(emitted / rate_));
    std::this_thread::sleep_until(deadline);
  }

 private:
  double rate_;
  std::chrono::steady_clock::time_point start_;
};

bool SplitHostPort(const std::string& spec, std::string* host, int* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    return false;
  }
  *host = spec.substr(0, colon);
  *port = std::atoi(spec.c_str() + colon + 1);
  return *port > 0 && *port < 65536;
}

// Streams `points` to stdout as CSV in `batch` sized chunks under `throttle`.
int StreamToStdout(const std::vector<sop::Point>& points, size_t batch,
                   const Throttle& throttle) {
  int64_t emitted = 0;
  for (size_t start = 0; start < points.size(); start += batch) {
    const size_t end = std::min(points.size(), start + batch);
    const std::vector<sop::Point> chunk(points.begin() + start,
                                        points.begin() + end);
    const std::string csv = sop::io::FormatPointsCsv(chunk);
    std::fwrite(csv.data(), 1, csv.size(), stdout);
    std::fflush(stdout);
    emitted += static_cast<int64_t>(chunk.size());
    throttle.Wait(emitted);
  }
  std::fprintf(stderr, "streamed %lld points to stdout\n",
               static_cast<long long>(emitted));
  return 0;
}

// Streams `points` to a sop server as ingest batches under `throttle`.
int StreamToServer(const std::vector<sop::Point>& points,
                   const std::string& host, int port, size_t batch,
                   const Throttle& throttle) {
  using namespace sop;
  net::SopClient client;
  std::string error;
  if (!client.Connect(host, port, &error)) {
    std::fprintf(stderr, "connect error: %s\n", error.c_str());
    return 1;
  }
  const bool count_windows =
      client.server_info().window_type ==
      static_cast<uint32_t>(WindowType::kCount);
  // The stream is shared: continue from wherever the server already is.
  const int64_t base = client.server_info().last_boundary == INT64_MIN
                           ? 0
                           : client.server_info().last_boundary;
  int64_t emitted = 0;
  int64_t boundary = base;
  uint64_t batches = 0;
  for (size_t start = 0; start < points.size(); start += batch) {
    const size_t end = std::min(points.size(), start + batch);
    const std::vector<Point> chunk(points.begin() + start,
                                   points.begin() + end);
    emitted += static_cast<int64_t>(chunk.size());
    // Count windows key on cumulative arrival count; time windows on point
    // time (strictly advanced so back-to-back batches at one timestamp
    // still make progress).
    boundary = count_windows
                   ? base + emitted
                   : std::max(boundary + 1, chunk.back().time + 1);
    net::IngestAckMsg ack;
    if (!client.Ingest(boundary, chunk, &ack, &error)) {
      std::fprintf(stderr, "ingest error: %s\n", error.c_str());
      return 1;
    }
    if (ack.accepted != chunk.size()) {
      for (const net::ErrorMsg& e : client.TakeErrors()) {
        std::fprintf(stderr, "server: %s\n", e.message.c_str());
      }
      return 1;
    }
    ++batches;
    throttle.Wait(emitted);
  }
  std::fprintf(stderr, "streamed %lld points in %llu batches to %s:%d\n",
               static_cast<long long>(emitted),
               static_cast<unsigned long long>(batches), host.c_str(), port);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sop;

  std::string kind;
  std::string out_path;
  std::string connect_spec;
  std::string wcase_name = "G";
  std::string window_type_name = "count";
  int64_t n = 0;
  size_t queries = 100;
  uint64_t seed = 42;
  int dims = 2;
  double outlier_rate = 0.03;
  double hotspot_frac = 0.0;
  double rate = 0.0;
  size_t batch = 128;

  cli::FlagSet flags(
      "Materialize benchmark datasets (--kind synthetic|stt) and workload\n"
      "specs (--kind workload) to disk, or stream points at a controlled\n"
      "rate: --out - writes batched CSV to stdout, --connect speaks the sop\n"
      "wire protocol and pushes each chunk as one ingest batch.");
  flags.Str("--kind", &kind, "synthetic|stt|workload", "what to generate");
  flags.I64("--n", &n, "N", "number of points to generate", 1);
  flags.Str("--out", &out_path, "PATH",
            "output file ('-' streams CSV to stdout)");
  flags.Str("--connect", &connect_spec, "HOST:PORT",
            "stream to a sop_server instead of writing a file");
  flags.F64("--rate", &rate, "POINTS_PER_SEC",
            "pace streaming output (0 = full speed)", 0.0);
  flags.Size("--batch", &batch, "B", "points per streamed chunk", 1);
  flags.U64("--seed", &seed, "S", "generator seed");
  flags.Int("--dims", &dims, "D", "synthetic point dimensionality", 1);
  flags.F64("--outlier-rate", &outlier_rate, "F",
            "synthetic/STT outlier fraction", 0.0);
  flags.F64("--hotspot", &hotspot_frac, "FRAC",
            "synthetic: skew this fraction of inliers into one cluster "
            "(spatially imbalanced streams for scale-out experiments)",
            0.0);
  flags.Str("--case", &wcase_name, "A..G",
            "workload parameter case (paper Sec. 7)");
  flags.Size("--queries", &queries, "Q", "workload query count", 1);
  flags.Str("--window-type", &window_type_name, "count|time",
            "workload window unit");
  int exit_code = 0;
  if (!flags.Parse(argc, argv, &exit_code)) return exit_code;
  if (out_path.empty() && connect_spec.empty()) {
    flags.UsageError("--out or --connect is required");
    return 2;
  }
  if (hotspot_frac < 0.0 || hotspot_frac > 1.0) {
    flags.UsageError("--hotspot must be in [0, 1]");
    return 2;
  }

  std::string error;
  if (kind == "synthetic" || kind == "stt") {
    if (n <= 0) {
      std::fprintf(stderr, "--n must be positive\n");
      return 2;
    }
    std::vector<Point> points;
    if (kind == "synthetic") {
      gen::SyntheticOptions options;
      options.seed = seed;
      options.dimensions = dims;
      options.outlier_rate = outlier_rate;
      options.hotspot_frac = hotspot_frac;
      points = gen::GenerateSynthetic(n, options);
    } else {
      gen::SttOptions options;
      options.seed = seed;
      options.anomaly_rate = outlier_rate;
      points = gen::GenerateStt(n, options);
    }
    const Throttle throttle(rate);
    if (!connect_spec.empty()) {
      std::string host;
      int port = 0;
      if (!SplitHostPort(connect_spec, &host, &port)) {
        std::fprintf(stderr, "--connect expects HOST:PORT\n");
        return 2;
      }
      return StreamToServer(points, host, port, batch, throttle);
    }
    if (out_path == "-") {
      return StreamToStdout(points, batch, throttle);
    }
    if (!io::SavePointsCsv(out_path, points, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu %s points to %s\n", points.size(),
                 kind.c_str(), out_path.c_str());
    return 0;
  }

  if (kind == "workload") {
    gen::WorkloadCase wcase;
    if (!gen::ParseWorkloadCase(wcase_name, &wcase)) {
      std::fprintf(stderr, "bad --case %s (expect A..G)\n",
                   wcase_name.c_str());
      return 2;
    }
    const WindowType type =
        window_type_name == "time" ? WindowType::kTime : WindowType::kCount;
    gen::WorkloadGenOptions options;
    options.seed = seed;
    const Workload workload =
        gen::GenerateWorkload(wcase, queries, type, options);
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    const std::string spec = io::FormatWorkloadSpec(workload);
    std::fwrite(spec.data(), 1, spec.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %zu case-%s queries to %s\n", queries,
                 wcase_name.c_str(), out_path.c_str());
    return 0;
  }

  flags.UsageError("unknown --kind '" + kind + "' (expect synthetic|stt|"
                   "workload)");
  return 2;
}
