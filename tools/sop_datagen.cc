// sop_datagen: materialize benchmark datasets and workload specs to disk,
// or stream points at a controlled rate for serving-plane load tests.
//
// Usage:
//   sop_datagen --kind synthetic|stt --n N --out points.csv [--seed S]
//               [--dims D] [--outlier-rate F]
//   sop_datagen --kind synthetic|stt --n N --out - [--rate P] [--batch B]
//   sop_datagen --kind synthetic|stt --n N --connect HOST:PORT
//               [--rate P] [--batch B]
//   sop_datagen --kind workload --case A..G --queries Q --out spec.txt
//               [--seed S] [--window-type count|time]
//
// Streaming modes: `--out -` writes CSV to stdout in --batch sized chunks;
// `--connect` speaks the sop wire protocol (net/client.h) and pushes each
// chunk as one ingest batch, deriving boundaries from the server's window
// type (cumulative point count, or point time). `--rate P` paces either
// mode to P points/second against absolute deadlines, so jitter does not
// accumulate; 0 (default) streams at full speed.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "sop/gen/stt.h"
#include "sop/gen/synthetic.h"
#include "sop/gen/workload_gen.h"
#include "sop/io/csv.h"
#include "sop/io/workload_parser.h"
#include "sop/net/client.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --kind synthetic|stt --n N --out points.csv [--seed S]\n"
      "          [--dims D] [--outlier-rate F]\n"
      "       %s --kind synthetic|stt --n N (--out - | --connect HOST:PORT)\n"
      "          [--rate POINTS_PER_SEC] [--batch B]\n"
      "       %s --kind workload --case A..G --queries Q --out spec.txt\n"
      "          [--seed S] [--window-type count|time]\n",
      argv0, argv0, argv0);
}

// Paces a stream to `rate` points/sec against absolute deadlines.
class Throttle {
 public:
  explicit Throttle(double rate)
      : rate_(rate), start_(std::chrono::steady_clock::now()) {}

  // Blocks until `emitted` points are allowed to have left.
  void Wait(int64_t emitted) const {
    if (rate_ <= 0.0) return;
    const auto deadline =
        start_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(emitted / rate_));
    std::this_thread::sleep_until(deadline);
  }

 private:
  double rate_;
  std::chrono::steady_clock::time_point start_;
};

bool SplitHostPort(const std::string& spec, std::string* host, int* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    return false;
  }
  *host = spec.substr(0, colon);
  *port = std::atoi(spec.c_str() + colon + 1);
  return *port > 0 && *port < 65536;
}

// Streams `points` to stdout as CSV in `batch` sized chunks under `throttle`.
int StreamToStdout(const std::vector<sop::Point>& points, size_t batch,
                   const Throttle& throttle) {
  int64_t emitted = 0;
  for (size_t start = 0; start < points.size(); start += batch) {
    const size_t end = std::min(points.size(), start + batch);
    const std::vector<sop::Point> chunk(points.begin() + start,
                                        points.begin() + end);
    const std::string csv = sop::io::FormatPointsCsv(chunk);
    std::fwrite(csv.data(), 1, csv.size(), stdout);
    std::fflush(stdout);
    emitted += static_cast<int64_t>(chunk.size());
    throttle.Wait(emitted);
  }
  std::fprintf(stderr, "streamed %lld points to stdout\n",
               static_cast<long long>(emitted));
  return 0;
}

// Streams `points` to a sop server as ingest batches under `throttle`.
int StreamToServer(const std::vector<sop::Point>& points,
                   const std::string& host, int port, size_t batch,
                   const Throttle& throttle) {
  using namespace sop;
  net::SopClient client;
  std::string error;
  if (!client.Connect(host, port, &error)) {
    std::fprintf(stderr, "connect error: %s\n", error.c_str());
    return 1;
  }
  const bool count_windows =
      client.server_info().window_type ==
      static_cast<uint32_t>(WindowType::kCount);
  // The stream is shared: continue from wherever the server already is.
  const int64_t base = client.server_info().last_boundary == INT64_MIN
                           ? 0
                           : client.server_info().last_boundary;
  int64_t emitted = 0;
  int64_t boundary = base;
  uint64_t batches = 0;
  for (size_t start = 0; start < points.size(); start += batch) {
    const size_t end = std::min(points.size(), start + batch);
    const std::vector<Point> chunk(points.begin() + start,
                                   points.begin() + end);
    emitted += static_cast<int64_t>(chunk.size());
    // Count windows key on cumulative arrival count; time windows on point
    // time (strictly advanced so back-to-back batches at one timestamp
    // still make progress).
    boundary = count_windows
                   ? base + emitted
                   : std::max(boundary + 1, chunk.back().time + 1);
    net::IngestAckMsg ack;
    if (!client.Ingest(boundary, chunk, &ack, &error)) {
      std::fprintf(stderr, "ingest error: %s\n", error.c_str());
      return 1;
    }
    if (ack.accepted != chunk.size()) {
      for (const net::ErrorMsg& e : client.TakeErrors()) {
        std::fprintf(stderr, "server: %s\n", e.message.c_str());
      }
      return 1;
    }
    ++batches;
    throttle.Wait(emitted);
  }
  std::fprintf(stderr, "streamed %lld points in %llu batches to %s:%d\n",
               static_cast<long long>(emitted),
               static_cast<unsigned long long>(batches), host.c_str(), port);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sop;

  std::string kind;
  std::string out_path;
  std::string connect_spec;
  std::string wcase_name = "G";
  std::string window_type_name = "count";
  int64_t n = 0;
  size_t queries = 100;
  uint64_t seed = 42;
  int dims = 2;
  double outlier_rate = 0.03;
  double rate = 0.0;
  size_t batch = 128;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--kind") {
      kind = next();
    } else if (arg == "--n") {
      n = std::atoll(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--connect") {
      connect_spec = next();
    } else if (arg == "--rate") {
      rate = std::atof(next());
      if (rate < 0.0) {
        std::fprintf(stderr, "--rate must be >= 0\n");
        return 2;
      }
    } else if (arg == "--batch") {
      const int64_t b = std::atoll(next());
      if (b <= 0) {
        std::fprintf(stderr, "--batch must be positive\n");
        return 2;
      }
      batch = static_cast<size_t>(b);
    } else if (arg == "--seed") {
      seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--dims") {
      dims = std::atoi(next());
    } else if (arg == "--outlier-rate") {
      outlier_rate = std::atof(next());
    } else if (arg == "--case") {
      wcase_name = next();
    } else if (arg == "--queries") {
      queries = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--window-type") {
      window_type_name = next();
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }
  if (out_path.empty() && connect_spec.empty()) {
    Usage(argv[0]);
    return 2;
  }

  std::string error;
  if (kind == "synthetic" || kind == "stt") {
    if (n <= 0) {
      std::fprintf(stderr, "--n must be positive\n");
      return 2;
    }
    std::vector<Point> points;
    if (kind == "synthetic") {
      gen::SyntheticOptions options;
      options.seed = seed;
      options.dimensions = dims;
      options.outlier_rate = outlier_rate;
      points = gen::GenerateSynthetic(n, options);
    } else {
      gen::SttOptions options;
      options.seed = seed;
      options.anomaly_rate = outlier_rate;
      points = gen::GenerateStt(n, options);
    }
    const Throttle throttle(rate);
    if (!connect_spec.empty()) {
      std::string host;
      int port = 0;
      if (!SplitHostPort(connect_spec, &host, &port)) {
        std::fprintf(stderr, "--connect expects HOST:PORT\n");
        return 2;
      }
      return StreamToServer(points, host, port, batch, throttle);
    }
    if (out_path == "-") {
      return StreamToStdout(points, batch, throttle);
    }
    if (!io::SavePointsCsv(out_path, points, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu %s points to %s\n", points.size(),
                 kind.c_str(), out_path.c_str());
    return 0;
  }

  if (kind == "workload") {
    gen::WorkloadCase wcase;
    if (!gen::ParseWorkloadCase(wcase_name, &wcase)) {
      std::fprintf(stderr, "bad --case %s (expect A..G)\n",
                   wcase_name.c_str());
      return 2;
    }
    const WindowType type =
        window_type_name == "time" ? WindowType::kTime : WindowType::kCount;
    gen::WorkloadGenOptions options;
    options.seed = seed;
    const Workload workload =
        gen::GenerateWorkload(wcase, queries, type, options);
    FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    const std::string spec = io::FormatWorkloadSpec(workload);
    std::fwrite(spec.data(), 1, spec.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %zu case-%s queries to %s\n", queries,
                 wcase_name.c_str(), out_path.c_str());
    return 0;
  }

  std::fprintf(stderr, "unknown --kind %s\n", kind.c_str());
  Usage(argv[0]);
  return 2;
}
