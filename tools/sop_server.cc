// sop_server: serve shared outlier detection over TCP.
//
// Usage:
//   sop_server [--host H] [--port P] [--detector NAME]
//              [--window-type count|time] [--metric euclidean|manhattan]
//              [--history-window N] [--send-queue N]
//              [--overload block|drop-oldest] [--ingest-queue N]
//              [--checkpoint PATH] [--checkpoint-every N]
//              [--checkpoint-generations N] [--threads N]
//              [--exact-basis] [--headroom-r R[,R...]] [--headroom-k N]
//              [--headroom-win N] [--idle-timeout MS]
//              [--replicate-to HOST:PORT | --standby [--promote-on-loss]]
//              [--metrics] [--metrics-out FILE]
//              [--kernel scalar|avx2|auto]
//              [--fault-rate SITE=RATE[,...]] [--fault-seed S]
//              [--fault-max N]
//
// Hosts one shared SopSession behind the sop wire protocol (DESIGN.md
// Sec. 13): clients ingest point batches, subscribe/unsubscribe outlier
// queries live, and receive per-query emissions. Runs until SIGINT or
// SIGTERM, then shuts down cleanly: stops accepting, drains the detection
// loop and every send queue, flushes replication, writes a final
// checkpoint when --checkpoint is set (a restarted server resumes from
// it), and exits 0. Prints the bound port on stdout — `--port 0` picks an
// ephemeral one, which scripts capture from that line.
//
// High availability (DESIGN.md Sec. 16): run a primary with
// `--replicate-to HOST:PORT` pointing at a second server started with
// `--standby --promote-on-loss` and the same session flags. The primary
// streams its state to the standby after every batch; when the primary
// dies, the standby promotes itself and serves from the last replicated
// boundary — reconnecting clients (sop_client --reconnect) resume there
// exactly once.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "flags.h"
#include "sop/common/fault.h"
#include "sop/detector/factory.h"
#include "sop/net/server.h"
#include "sop/obs/export.h"
#include "sop/obs/metrics.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace sop;

  net::ServerOptions options;
  bool want_metrics = false;
  std::string metrics_out;
  std::vector<std::string> fault_specs;
  uint64_t fault_seed = 1;
  int64_t fault_max = -1;

  cli::FlagSet flags(
      "Serve shared outlier detection over TCP (DESIGN.md Sec. 13): clients\n"
      "ingest point batches, subscribe/unsubscribe queries live, and receive\n"
      "per-query emissions. Runs until SIGINT/SIGTERM; prints the bound port\n"
      "on stdout (--port 0 picks an ephemeral one).\n"
      "\n"
      "Basis headroom (sop/sop-grid detectors only): the default elastic\n"
      "basis makes every subscribe at an already-served radius an in-place\n"
      "overlay swap. --exact-basis compiles the paper's exact plan instead\n"
      "(maximal pruning, rebuild-heavy churn); --headroom-r/-k/-win reserve\n"
      "extra radii / skyband depth / window span on top.");
  flags.Str("--host", &options.host, "H", "bind address");
  flags.Int("--port", &options.port, "P", "bind port (0 = ephemeral)", 0);
  flags.Flag("--detector", "NAME", "detector hosting the shared session",
             [&options](const std::string& v, std::string* error) {
               if (!IsKnownDetector(v)) {
                 *error = UnknownDetectorMessage(v);
                 return false;
               }
               options.detector = v;
               return true;
             });
  flags.Flag("--window-type", "count|time", "window unit for all queries",
             [&options](const std::string& v, std::string* error) {
               if (v == "count") {
                 options.window_type = WindowType::kCount;
               } else if (v == "time") {
                 options.window_type = WindowType::kTime;
               } else {
                 *error = "expect count|time";
                 return false;
               }
               return true;
             });
  flags.Flag("--metric", "euclidean|manhattan", "distance metric",
             [&options](const std::string& v, std::string* error) {
               if (!ParseMetric(v, &options.metric)) {
                 *error = "expect euclidean|manhattan";
                 return false;
               }
               return true;
             });
  flags.I64("--history-window", &options.history_window, "N",
            "history retained for late subscribers", 0);
  flags.Size("--send-queue", &options.max_send_queue, "N",
             "per-connection emission queue cap");
  flags.Flag("--overload", "block|drop-oldest",
             "full send-queue policy (backpressure, or shed emissions)",
             [&options](const std::string& v, std::string* error) {
               if (v == "block") {
                 options.send_policy = OverloadPolicy::kBlock;
               } else if (v == "drop-oldest") {
                 options.send_policy = OverloadPolicy::kDropOldest;
               } else {
                 *error = "unknown policy";
                 return false;
               }
               return true;
             });
  flags.Size("--ingest-queue", &options.max_ingest_queue, "N",
             "ingest queue cap");
  flags.Str("--checkpoint", &options.checkpoint_path, "PATH",
            "write checkpoints here; a restarted server resumes from it");
  flags.I64("--checkpoint-every", &options.checkpoint_every_batches, "N",
            "checkpoint every N ingested batches", 1);
  flags.Int("--checkpoint-generations", &options.checkpoint_generations, "N",
            "checkpoint generations kept on disk; restore falls back past "
            "corrupt files",
            1);
  flags.Int("--idle-timeout", &options.idle_timeout_ms, "MS",
            "disconnect a connection stalled mid-frame this long "
            "(-1 = never)",
            -1);
  flags.Flag("--replicate-to", "HOST:PORT",
             "primary: ship state to a hot standby after every batch",
             [&options](const std::string& v, std::string* error) {
               const size_t colon = v.rfind(':');
               if (colon == std::string::npos || colon == 0) {
                 *error = "expect HOST:PORT";
                 return false;
               }
               char* end = nullptr;
               const long port = std::strtol(v.c_str() + colon + 1, &end, 10);
               if (end == nullptr || *end != '\0' || port <= 0 ||
                   port > 65535) {
                 *error = "bad port";
                 return false;
               }
               options.replicate_host = v.substr(0, colon);
               options.replicate_port = static_cast<int>(port);
               return true;
             });
  flags.Switch("--standby",
               "serve as a hot standby: apply replication, refuse "
               "ingest/subscribe until promoted",
               [&options] { options.standby = true; });
  flags.Switch("--promote-on-loss",
               "standby: promote to primary when the replication "
               "connection drops",
               [&options] { options.promote_on_loss = true; });
  flags.Int("--threads", &options.num_threads, "N",
            "detector worker threads (0 = one per core)", 0);
  flags.Switch("--exact-basis",
               "compile the paper's exact plan instead of the elastic basis",
               [&options] { options.headroom.elastic = false; });
  flags.Flag("--headroom-r", "R[,R...]", "reserve extra basis radii",
             [&options](const std::string& v, std::string* error) {
               for (const std::string& spec : cli::SplitCommas(v)) {
                 char* end = nullptr;
                 const double r = std::strtod(spec.c_str(), &end);
                 if (end == nullptr || *end != '\0' || !(r > 0.0)) {
                   *error = "bad radius '" + spec + "'";
                   return false;
                 }
                 options.headroom.r_values.push_back(r);
               }
               return true;
             });
  flags.I64("--headroom-k", &options.headroom.k_slack, "N",
            "reserve extra skyband depth", 0);
  flags.I64("--headroom-win", &options.headroom.win_floor, "N",
            "reserve extra window span", 0);
  flags.Bool("--metrics", &want_metrics,
             "enable observability; dump the counter registry on shutdown");
  flags.Str("--metrics-out", &metrics_out, "PATH",
            "enable observability; write the registry snapshot to PATH as "
            "JSON on shutdown");
  flags.StrList("--fault-rate", &fault_specs, "SITE=RATE[,...]",
                "arm the deterministic fault injector (common/fault.h)");
  flags.U64("--fault-seed", &fault_seed, "S", "fault schedule seed");
  flags.I64("--fault-max", &fault_max, "N",
            "cap injected failures per site (-1 = unlimited)", -1);
  cli::AddKernelFlag(&flags);
  int exit_code = 0;
  if (!flags.Parse(argc, argv, &exit_code)) return exit_code;

  FaultInjector injector(fault_seed);
  bool inject = false;
  for (const std::string& spec : fault_specs) {
    if (!cli::ParseFaultRate(spec, &injector)) {
      std::fprintf(stderr, "--fault-rate: bad site=rate spec '%s'\n",
                   spec.c_str());
      return 2;
    }
    inject = true;
  }
  if (inject) {
    if (fault_max >= 0) {
      for (int i = 0; i < kNumFaultSites; ++i) {
        injector.SetMaxFailures(static_cast<FaultSite>(i), fault_max);
      }
    }
    std::fprintf(stderr, "fault injection armed (seed %llu)\n",
                 static_cast<unsigned long long>(fault_seed));
    FaultInjector::Arm(&injector);
  }
  if (want_metrics || !metrics_out.empty()) {
    obs::SetEnabled(true);
    obs::MetricsRegistry::Global().Reset();
  }

  net::SopServer server(options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "start error: %s\n", error.c_str());
    return 1;
  }
  // Scripts parse this line to find an ephemeral port.
  std::printf("serving detector '%s' (%s windows) on %s:%d\n",
              options.detector.c_str(),
              options.window_type == WindowType::kCount ? "count" : "time",
              options.host.c_str(), server.port());
  std::fflush(stdout);
  if (options.standby) {
    std::fprintf(stderr, "hot standby%s\n",
                 options.promote_on_loss ? ", promoting on primary loss"
                                         : "");
  } else if (!options.replicate_host.empty()) {
    std::fprintf(stderr, "replicating to %s:%d\n",
                 options.replicate_host.c_str(), options.replicate_port);
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    // Signal-driven: nothing to do but wait.
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  server.Stop();

  const net::ServerStats stats = server.stats();
  std::fprintf(stderr,
               "served %llu connections, %llu batches (%llu points), "
               "%llu emissions (%llu shed), %llu protocol errors, "
               "%llu checkpoints\n",
               static_cast<unsigned long long>(stats.connections),
               static_cast<unsigned long long>(stats.ingest_batches),
               static_cast<unsigned long long>(stats.ingest_points),
               static_cast<unsigned long long>(stats.emissions),
               static_cast<unsigned long long>(stats.shed_emissions),
               static_cast<unsigned long long>(stats.protocol_errors),
               static_cast<unsigned long long>(stats.checkpoints));
  std::fprintf(stderr,
               "workload changes: %llu overlay swaps, %llu rebuilds "
               "(%llu basis extends), %llu points replayed\n",
               static_cast<unsigned long long>(stats.overlay_changes),
               static_cast<unsigned long long>(stats.rebuild_changes),
               static_cast<unsigned long long>(stats.basis_extends),
               static_cast<unsigned long long>(stats.replayed_points));
  if (options.standby || !options.replicate_host.empty()) {
    std::fprintf(stderr,
                 "ha: role %s, %llu promotions, sent %llu snapshots + "
                 "%llu batches, applied %llu + %llu, %llu resyncs, "
                 "%llu emissions replayed (%llu gaps)\n",
                 net::ServerRoleName(stats.role),
                 static_cast<unsigned long long>(stats.promotions),
                 static_cast<unsigned long long>(stats.repl_snapshots_sent),
                 static_cast<unsigned long long>(stats.repl_batches_sent),
                 static_cast<unsigned long long>(stats.repl_snapshots_applied),
                 static_cast<unsigned long long>(stats.repl_batches_applied),
                 static_cast<unsigned long long>(stats.repl_resyncs),
                 static_cast<unsigned long long>(stats.resume_replayed),
                 static_cast<unsigned long long>(stats.resume_gaps));
  }
  if (want_metrics || !metrics_out.empty()) {
    const obs::Snapshot snap = obs::MetricsRegistry::Global().TakeSnapshot();
    const std::string json = obs::ToJson(snap);
    if (want_metrics) std::fprintf(stderr, "%s\n", json.c_str());
    if (!metrics_out.empty()) {
      std::FILE* f = std::fopen(metrics_out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "--metrics-out: cannot write %s\n",
                     metrics_out.c_str());
        exit_code = 1;
      } else {
        std::fprintf(f, "%s\n", json.c_str());
        std::fclose(f);
      }
    }
  }
  if (inject) FaultInjector::Disarm();
  return exit_code;
}
