// sop_server: serve shared outlier detection over TCP.
//
// Usage:
//   sop_server [--host H] [--port P] [--detector NAME]
//              [--window-type count|time] [--metric euclidean|manhattan]
//              [--history-window N] [--send-queue N]
//              [--overload block|drop-oldest] [--ingest-queue N]
//              [--checkpoint PATH] [--checkpoint-every N] [--threads N]
//              [--exact-basis] [--headroom-r R[,R...]] [--headroom-k N]
//              [--headroom-win N]
//              [--metrics] [--fault-rate SITE=RATE[,...]] [--fault-seed S]
//              [--fault-max N]
//
// Hosts one shared SopSession behind the sop wire protocol (DESIGN.md
// Sec. 13): clients ingest point batches, subscribe/unsubscribe outlier
// queries live, and receive per-query emissions. Runs until SIGINT or
// SIGTERM, then shuts down cleanly (final checkpoint included when
// --checkpoint is set; a restarted server resumes from it). Prints the
// bound port on stdout — `--port 0` picks an ephemeral one, which scripts
// capture from that line.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "sop/common/fault.h"
#include "sop/detector/factory.h"
#include "sop/net/server.h"
#include "sop/obs/export.h"
#include "sop/obs/metrics.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host H] [--port P] [--detector NAME]\n"
      "          [--window-type count|time] [--metric euclidean|manhattan]\n"
      "          [--history-window N] [--send-queue N]\n"
      "          [--overload block|drop-oldest] [--ingest-queue N]\n"
      "          [--checkpoint PATH] [--checkpoint-every N] [--threads N]\n"
      "          [--exact-basis] [--headroom-r R[,R...]] [--headroom-k N]\n"
      "          [--headroom-win N]\n"
      "          [--metrics] [--fault-rate SITE=RATE[,...]] [--fault-seed S]\n"
      "          [--fault-max N]\n"
      "\n"
      "Basis headroom (sop/sop-grid detectors only): the default elastic\n"
      "basis makes every subscribe at an already-served radius an in-place\n"
      "overlay swap. --exact-basis compiles the paper's exact plan instead\n"
      "(maximal pruning, rebuild-heavy churn); --headroom-r/-k/-win reserve\n"
      "extra radii / skyband depth / window span on top.\n",
      argv0);
}

bool ParseFaultRate(const std::string& spec, sop::FaultInjector* injector) {
  const size_t eq = spec.find('=');
  if (eq == std::string::npos) return false;
  const std::string site_name = spec.substr(0, eq);
  char* end = nullptr;
  const double rate = std::strtod(spec.c_str() + eq + 1, &end);
  if (end == nullptr || *end != '\0' || rate < 0.0 || rate > 1.0) {
    return false;
  }
  for (int i = 0; i < sop::kNumFaultSites; ++i) {
    const auto site = static_cast<sop::FaultSite>(i);
    if (site_name == sop::FaultSiteName(site)) {
      injector->SetRate(site, rate);
      return true;
    }
  }
  return false;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sop;

  net::ServerOptions options;
  bool want_metrics = false;
  std::vector<std::string> fault_specs;
  uint64_t fault_seed = 1;
  int64_t fault_max = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      options.host = next();
    } else if (arg == "--port") {
      options.port = std::atoi(next());
    } else if (arg == "--detector") {
      options.detector = next();
      if (!IsKnownDetector(options.detector)) {
        std::fprintf(stderr, "%s\n",
                     UnknownDetectorMessage(options.detector).c_str());
        return 2;
      }
    } else if (arg == "--window-type") {
      const std::string name = next();
      if (name == "count") {
        options.window_type = WindowType::kCount;
      } else if (name == "time") {
        options.window_type = WindowType::kTime;
      } else {
        std::fprintf(stderr, "--window-type: expect count|time\n");
        return 2;
      }
    } else if (arg == "--metric") {
      const std::string name = next();
      if (name == "euclidean") {
        options.metric = Metric::kEuclidean;
      } else if (name == "manhattan") {
        options.metric = Metric::kManhattan;
      } else {
        std::fprintf(stderr, "--metric: expect euclidean|manhattan\n");
        return 2;
      }
    } else if (arg == "--history-window") {
      options.history_window = std::atoll(next());
    } else if (arg == "--send-queue") {
      options.max_send_queue = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--overload") {
      const std::string policy = next();
      if (policy == "block") {
        options.send_policy = OverloadPolicy::kBlock;
      } else if (policy == "drop-oldest") {
        options.send_policy = OverloadPolicy::kDropOldest;
      } else {
        std::fprintf(stderr, "--overload: unknown policy '%s'\n",
                     policy.c_str());
        return 2;
      }
    } else if (arg == "--ingest-queue") {
      options.max_ingest_queue = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--checkpoint") {
      options.checkpoint_path = next();
    } else if (arg == "--checkpoint-every") {
      options.checkpoint_every_batches = std::atoll(next());
    } else if (arg == "--threads") {
      options.num_threads = std::atoi(next());
    } else if (arg == "--exact-basis") {
      options.headroom.elastic = false;
    } else if (arg == "--headroom-r") {
      for (const std::string& spec : SplitCommas(next())) {
        char* end = nullptr;
        const double r = std::strtod(spec.c_str(), &end);
        if (end == nullptr || *end != '\0' || !(r > 0.0)) {
          std::fprintf(stderr, "--headroom-r: bad radius '%s'\n",
                       spec.c_str());
          return 2;
        }
        options.headroom.r_values.push_back(r);
      }
    } else if (arg == "--headroom-k") {
      options.headroom.k_slack = std::atoll(next());
      if (options.headroom.k_slack < 0) {
        std::fprintf(stderr, "--headroom-k: expect N >= 0\n");
        return 2;
      }
    } else if (arg == "--headroom-win") {
      options.headroom.win_floor = std::atoll(next());
      if (options.headroom.win_floor < 0) {
        std::fprintf(stderr, "--headroom-win: expect N >= 0\n");
        return 2;
      }
    } else if (arg == "--metrics") {
      want_metrics = true;
    } else if (arg == "--fault-rate") {
      for (const std::string& spec : SplitCommas(next())) {
        fault_specs.push_back(spec);
      }
    } else if (arg == "--fault-seed") {
      fault_seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--fault-max") {
      fault_max = std::atoll(next());
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  FaultInjector injector(fault_seed);
  bool inject = false;
  for (const std::string& spec : fault_specs) {
    if (!ParseFaultRate(spec, &injector)) {
      std::fprintf(stderr, "--fault-rate: bad site=rate spec '%s'\n",
                   spec.c_str());
      return 2;
    }
    inject = true;
  }
  if (inject) {
    if (fault_max >= 0) {
      for (int i = 0; i < kNumFaultSites; ++i) {
        injector.SetMaxFailures(static_cast<FaultSite>(i), fault_max);
      }
    }
    std::fprintf(stderr, "fault injection armed (seed %llu)\n",
                 static_cast<unsigned long long>(fault_seed));
    FaultInjector::Arm(&injector);
  }
  if (want_metrics) {
    obs::SetEnabled(true);
    obs::MetricsRegistry::Global().Reset();
  }

  net::SopServer server(options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "start error: %s\n", error.c_str());
    return 1;
  }
  // Scripts parse this line to find an ephemeral port.
  std::printf("serving detector '%s' (%s windows) on %s:%d\n",
              options.detector.c_str(),
              options.window_type == WindowType::kCount ? "count" : "time",
              options.host.c_str(), server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    // Signal-driven: nothing to do but wait.
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  server.Stop();

  const net::ServerStats stats = server.stats();
  std::fprintf(stderr,
               "served %llu connections, %llu batches (%llu points), "
               "%llu emissions (%llu shed), %llu protocol errors, "
               "%llu checkpoints\n",
               static_cast<unsigned long long>(stats.connections),
               static_cast<unsigned long long>(stats.ingest_batches),
               static_cast<unsigned long long>(stats.ingest_points),
               static_cast<unsigned long long>(stats.emissions),
               static_cast<unsigned long long>(stats.shed_emissions),
               static_cast<unsigned long long>(stats.protocol_errors),
               static_cast<unsigned long long>(stats.checkpoints));
  std::fprintf(stderr,
               "workload changes: %llu overlay swaps, %llu rebuilds "
               "(%llu basis extends), %llu points replayed\n",
               static_cast<unsigned long long>(stats.overlay_changes),
               static_cast<unsigned long long>(stats.rebuild_changes),
               static_cast<unsigned long long>(stats.basis_extends),
               static_cast<unsigned long long>(stats.replayed_points));
  if (want_metrics) {
    const obs::Snapshot snap = obs::MetricsRegistry::Global().TakeSnapshot();
    std::fprintf(stderr, "%s\n", obs::ToJson(snap).c_str());
  }
  if (inject) FaultInjector::Disarm();
  return 0;
}
