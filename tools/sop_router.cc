// sop_router: front N sop_server workers as one sharded deployment.
//
// Usage:
//   sop_router --workers HOST:PORT[,HOST:PORT...]
//              [--host H] [--port P] [--detector NAME]
//              [--window-type count|time] [--metric euclidean|manhattan]
//              [--domain LO:HI | --cuts C[,C...]] [--halo auto|WIDTH]
//              [--headroom-r R[,R...]] [--headroom-win N]
//              [--worker-queue N] [--send-queue N] [--ingest-queue N]
//              [--seq-retention N] [--metrics] [--metrics-out FILE]
//              [--fault-rate SITE=RATE[,...]] [--fault-seed S]
//              [--fault-max N]
//
// The scale-out plane (DESIGN.md Sec. 17): points are spatially sharded
// over the first attribute, each worker sees its region plus a halo of
// width r_max, and per-worker emissions are merged back into one canonical
// stream bit-identical to a single-node run. Clients speak the ordinary
// wire protocol to the router; workers must be sop_server instances
// serving TIME windows with the same detector and metric (the router
// translates count deployments itself), ideally with --checkpoint and
// --checkpoint-every 1 so a restarted worker rejoins exactly-once.
//
// The shard regions come from --cuts (explicit interior cut points, one
// fewer than workers) or --domain LO:HI (split uniformly); outer shards
// extend to +-infinity either way. Runs until SIGINT/SIGTERM; prints the
// bound port on stdout like sop_server does.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "flags.h"
#include "sop/cluster/partition.h"
#include "sop/cluster/router.h"
#include "sop/common/fault.h"
#include "sop/detector/factory.h"
#include "sop/obs/export.h"
#include "sop/obs/metrics.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

bool ParseEndpoint(const std::string& spec, sop::net::Endpoint* out) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  char* end = nullptr;
  const long port = std::strtol(spec.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || port <= 0 || port > 65535) {
    return false;
  }
  out->host = spec.substr(0, colon);
  out->port = static_cast<int>(port);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sop;

  cluster::RouterOptions options;
  bool want_metrics = false;
  std::string metrics_out;
  double domain_lo = 0.0;
  double domain_hi = 0.0;
  bool have_domain = false;
  std::vector<double> cuts;
  std::vector<std::string> fault_specs;
  uint64_t fault_seed = 1;
  int64_t fault_max = -1;

  cli::FlagSet flags(
      "Front N sop_server workers as one sharded deployment (DESIGN.md\n"
      "Sec. 17): spatial sharding over the first attribute with halo\n"
      "replication, merged back into one emission stream bit-identical to\n"
      "a single-node run. Clients connect to the router with the ordinary\n"
      "wire protocol. Workers must serve TIME windows with the router's\n"
      "detector and metric (count deployments are translated here), and\n"
      "should checkpoint every batch so restarts rejoin exactly-once.\n"
      "Runs until SIGINT/SIGTERM; prints the bound port on stdout.");
  flags.Str("--host", &options.host, "H", "bind address");
  flags.Int("--port", &options.port, "P", "bind port (0 = ephemeral)", 0);
  flags.Flag("--workers", "HOST:PORT[,...]",
             "downstream sop_server workers, in shard order",
             [&options](const std::string& v, std::string* error) {
               for (const std::string& spec : cli::SplitCommas(v)) {
                 net::Endpoint ep;
                 if (!ParseEndpoint(spec, &ep)) {
                   *error = "bad endpoint '" + spec + "'";
                   return false;
                 }
                 options.workers.push_back(ep);
               }
               return true;
             });
  flags.Flag("--detector", "NAME", "detector the workers must serve",
             [&options](const std::string& v, std::string* error) {
               if (!IsKnownDetector(v)) {
                 *error = UnknownDetectorMessage(v);
                 return false;
               }
               options.detector = v;
               return true;
             });
  flags.Flag("--window-type", "count|time",
             "window unit the deployment presents to clients",
             [&options](const std::string& v, std::string* error) {
               if (v == "count") {
                 options.window_type = WindowType::kCount;
               } else if (v == "time") {
                 options.window_type = WindowType::kTime;
               } else {
                 *error = "expect count|time";
                 return false;
               }
               return true;
             });
  flags.Flag("--metric", "euclidean|manhattan", "distance metric",
             [&options](const std::string& v, std::string* error) {
               if (!ParseMetric(v, &options.metric)) {
                 *error = "expect euclidean|manhattan";
                 return false;
               }
               return true;
             });
  flags.Flag("--domain", "LO:HI",
             "first-attribute value range, split uniformly across workers",
             [&domain_lo, &domain_hi, &have_domain](const std::string& v,
                                                    std::string* error) {
               const size_t colon = v.find(':');
               if (colon == std::string::npos) {
                 *error = "expect LO:HI";
                 return false;
               }
               char* end = nullptr;
               domain_lo = std::strtod(v.c_str(), &end);
               if (end != v.c_str() + colon) {
                 *error = "bad LO";
                 return false;
               }
               domain_hi = std::strtod(v.c_str() + colon + 1, &end);
               if (end == nullptr || *end != '\0' || !(domain_hi > domain_lo)) {
                 *error = "expect LO < HI";
                 return false;
               }
               have_domain = true;
               return true;
             });
  flags.Flag("--cuts", "C[,C...]",
             "explicit interior cut points (one fewer than workers; "
             "overrides --domain)",
             [&cuts](const std::string& v, std::string* error) {
               for (const std::string& spec : cli::SplitCommas(v)) {
                 char* end = nullptr;
                 const double c = std::strtod(spec.c_str(), &end);
                 if (end == nullptr || *end != '\0') {
                   *error = "bad cut '" + spec + "'";
                   return false;
                 }
                 cuts.push_back(c);
               }
               return true;
             });
  flags.Flag("--halo", "auto|WIDTH",
             "halo width; auto derives it from the workload basis r_max "
             "(frozen at the first routed batch)",
             [&options](const std::string& v, std::string* error) {
               if (v == "auto") {
                 options.halo = -1.0;
                 return true;
               }
               char* end = nullptr;
               const double w = std::strtod(v.c_str(), &end);
               if (end == nullptr || *end != '\0' || !(w >= 0.0)) {
                 *error = "expect auto or a width >= 0";
                 return false;
               }
               options.halo = w;
               return true;
             });
  flags.Flag("--headroom-r", "R[,R...]",
             "reserve basis radii: widens an auto halo now so later "
             "subscribes at those radii stay admissible",
             [&options](const std::string& v, std::string* error) {
               for (const std::string& spec : cli::SplitCommas(v)) {
                 char* end = nullptr;
                 const double r = std::strtod(spec.c_str(), &end);
                 if (end == nullptr || *end != '\0' || !(r > 0.0)) {
                   *error = "bad radius '" + spec + "'";
                   return false;
                 }
                 options.headroom.r_values.push_back(r);
               }
               return true;
             });
  flags.I64("--headroom-win", &options.headroom.win_floor, "N",
            "reserve window span in the merge horizon", 0);
  flags.Size("--worker-queue", &options.max_worker_queue, "N",
             "per-worker job queue cap");
  flags.Size("--send-queue", &options.max_send_queue, "N",
             "per-subscriber send queue cap");
  flags.Size("--ingest-queue", &options.max_ingest_queue, "N",
             "client op queue cap");
  flags.I64("--seq-retention", &options.seq_retention, "N",
            "sequence-map retention in window-key units "
            "(0 = size from the largest subscribed window)",
            0);
  flags.Bool("--metrics", &want_metrics,
             "enable observability; dump the counter registry on shutdown");
  flags.Str("--metrics-out", &metrics_out, "PATH",
            "enable observability; write the registry snapshot to PATH as "
            "JSON on shutdown");
  flags.StrList("--fault-rate", &fault_specs, "SITE=RATE[,...]",
                "arm the deterministic fault injector (common/fault.h)");
  flags.U64("--fault-seed", &fault_seed, "S", "fault schedule seed");
  flags.I64("--fault-max", &fault_max, "N",
            "cap injected failures per site (-1 = unlimited)", -1);
  int exit_code = 0;
  if (!flags.Parse(argc, argv, &exit_code)) return exit_code;

  if (options.workers.empty()) {
    std::fprintf(stderr, "--workers is required\n");
    return 2;
  }
  if (!cuts.empty()) {
    if (cuts.size() + 1 != options.workers.size()) {
      std::fprintf(stderr,
                   "--cuts: %zu cuts describe %zu shards but %zu workers "
                   "are listed\n",
                   cuts.size(), cuts.size() + 1, options.workers.size());
      return 2;
    }
    options.partition.cuts = cuts;
  } else if (options.workers.size() > 1) {
    if (!have_domain) {
      std::fprintf(stderr,
                   "with %zu workers, give the shard regions via "
                   "--domain LO:HI or --cuts\n",
                   options.workers.size());
      return 2;
    }
    options.partition = cluster::PartitionSpec::Uniform(
        domain_lo, domain_hi, static_cast<int>(options.workers.size()));
  }

  FaultInjector injector(fault_seed);
  bool inject = false;
  for (const std::string& spec : fault_specs) {
    if (!cli::ParseFaultRate(spec, &injector)) {
      std::fprintf(stderr, "--fault-rate: bad site=rate spec '%s'\n",
                   spec.c_str());
      return 2;
    }
    inject = true;
  }
  if (inject) {
    if (fault_max >= 0) {
      for (int i = 0; i < kNumFaultSites; ++i) {
        injector.SetMaxFailures(static_cast<FaultSite>(i), fault_max);
      }
    }
    std::fprintf(stderr, "fault injection armed (seed %llu)\n",
                 static_cast<unsigned long long>(fault_seed));
    FaultInjector::Arm(&injector);
  }
  if (want_metrics || !metrics_out.empty()) {
    obs::SetEnabled(true);
    obs::MetricsRegistry::Global().Reset();
  }

  cluster::SopRouter router(options);
  std::string error;
  if (!router.Start(&error)) {
    std::fprintf(stderr, "start error: %s\n", error.c_str());
    return 1;
  }
  // Scripts parse this line to find an ephemeral port (same shape as
  // sop_server's).
  std::printf("routing detector '%s' (%s windows, %zu workers) on %s:%d\n",
              options.detector.c_str(),
              options.window_type == WindowType::kCount ? "count" : "time",
              options.workers.size(), options.host.c_str(), router.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (g_stop == 0) {
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  router.Stop();

  const cluster::RouterStats stats = router.stats();
  std::fprintf(
      stderr,
      "routed %llu batches (%llu points -> %llu copies, %llu halo) across "
      "%u workers, merged %llu emissions (%llu halo verdicts dropped), "
      "%llu reconnects, %llu worker failures%s\n",
      static_cast<unsigned long long>(stats.ingest_batches),
      static_cast<unsigned long long>(stats.ingest_points),
      static_cast<unsigned long long>(stats.routed_points),
      static_cast<unsigned long long>(stats.halo_points), stats.workers,
      static_cast<unsigned long long>(stats.merged_emissions),
      static_cast<unsigned long long>(stats.dropped_halo_outliers),
      static_cast<unsigned long long>(stats.worker_reconnects),
      static_cast<unsigned long long>(stats.worker_failures),
      stats.degraded ? " (stream degraded)" : "");
  std::fprintf(stderr, "halo width %.6g, %llu/%llu subscribes refused\n",
               stats.halo,
               static_cast<unsigned long long>(stats.refused_subscribes),
               static_cast<unsigned long long>(stats.refused_subscribes +
                                               stats.subscribes));
  if (want_metrics || !metrics_out.empty()) {
    const obs::Snapshot snap = obs::MetricsRegistry::Global().TakeSnapshot();
    const std::string json = obs::ToJson(snap);
    if (want_metrics) std::fprintf(stderr, "%s\n", json.c_str());
    if (!metrics_out.empty()) {
      std::FILE* f = std::fopen(metrics_out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "--metrics-out: cannot write %s\n",
                     metrics_out.c_str());
        exit_code = 1;
      } else {
        std::fprintf(f, "%s\n", json.c_str());
        std::fclose(f);
      }
    }
  }
  if (inject) FaultInjector::Disarm();
  return exit_code;
}
