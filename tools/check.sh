#!/usr/bin/env bash
# check.sh: build the full tree under AddressSanitizer+UBSan and run the
# test suite. Catches the memory bugs the release build hides (the thread
# pool and the grid scratch buffers in particular).
#
# Usage: tools/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j"$(nproc)"
ctest --preset asan -j"$(nproc)" "$@"
