#!/usr/bin/env bash
# check.sh: build the full tree under AddressSanitizer+UBSan and run the
# test suite, then build and run it again with the observability layer
# compiled out (-DSOP_NO_OBS) to keep the no-op macro expansions honest.
# Catches the memory bugs the release build hides (the thread pool and the
# grid scratch buffers in particular).
#
# Usage: tools/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

cmake --preset asan
cmake --build --preset asan -j"$(nproc)"
ctest --preset asan -j"$(nproc)" "$@"

cmake --preset noobs
cmake --build --preset noobs -j"$(nproc)"
ctest --preset noobs -j"$(nproc)" "$@"
