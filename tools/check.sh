#!/usr/bin/env bash
# check.sh: build the full tree under AddressSanitizer+UBSan and run the
# test suite, then again under standalone UBSan with
# -fno-sanitize-recover (asan's combined pass recovers and keeps going;
# this one traps, so any UB is a hard failure), then run the
# concurrency-heavy suites (fault injection, crash recovery, engine
# pipelining, the serving and scale-out planes) under ThreadSanitizer,
# then build and run everything again with the observability layer
# compiled out (-DSOP_NO_OBS) to keep the no-op macro expansions honest. Catches the memory bugs the release build hides (the
# thread pool and the grid scratch buffers in particular) and the
# ingest/worker/connection races the overload queue and the server's
# per-connection threads could hide.
#
# The asan pass also stretches the randomized fuzz loops — the checkpoint
# fuzz in recovery_test, the wire-frame fuzz in protocol_test, and the
# workload-churn fuzz in churn_fuzz_test — to ~2s each (SOP_FUZZ_MS); the
# churn fuzz additionally runs under tsan. Fuzz seeds are randomized per
# run and printed by the tests, so a failing run can be replayed exactly
# with SOP_FUZZ_SEED=<seed> tools/check.sh.
#
# Every cmake configure is checked explicitly so a broken preset or
# missing dependency fails the run immediately with a clear message,
# instead of surfacing later as a confusing build or ctest error.
#
# Usage: tools/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

export SOP_FUZZ_MS="${SOP_FUZZ_MS:-2000}"

configure() {
  local preset="$1"
  cmake --preset "$preset" || {
    echo "check.sh: cmake configure failed for preset '$preset'" >&2
    exit 1
  }
}

configure asan
cmake --build --preset asan -j"$(nproc)"
ctest --preset asan -j"$(nproc)" "$@"

configure ubsan
cmake --build --preset ubsan -j"$(nproc)"
ctest --preset ubsan -j"$(nproc)" "$@"

configure tsan
cmake --build --preset tsan -j"$(nproc)"
ctest --preset tsan -j"$(nproc)" -R 'fault_test|recovery_test|checkpoint_test|engine_test|stream_test|protocol_test|net_test|ha_test|churn_fuzz_test|kernel_test|partition_test|cluster_test|sim_test' "$@"

configure noobs
cmake --build --preset noobs -j"$(nproc)"
ctest --preset noobs -j"$(nproc)" "$@"
