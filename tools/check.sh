#!/usr/bin/env bash
# check.sh: build the full tree under AddressSanitizer+UBSan and run the
# test suite, then run the resilience suites (fault injection, crash
# recovery, engine pipelining) under ThreadSanitizer, then build and run
# everything again with the observability layer compiled out
# (-DSOP_NO_OBS) to keep the no-op macro expansions honest. Catches the
# memory bugs the release build hides (the thread pool and the grid
# scratch buffers in particular) and the ingest/worker races the overload
# queue could hide.
#
# The asan pass also stretches the checkpoint-corruption fuzz loop in
# recovery_test to ~2s (SOP_FUZZ_MS); the fuzz seed is randomized per run
# and printed by the test, so a failing run can be replayed exactly with
# SOP_FUZZ_SEED=<seed> tools/check.sh.
#
# Usage: tools/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

export SOP_FUZZ_MS="${SOP_FUZZ_MS:-2000}"

cmake --preset asan
cmake --build --preset asan -j"$(nproc)"
ctest --preset asan -j"$(nproc)" "$@"

cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)"
ctest --preset tsan -j"$(nproc)" -R 'fault_test|recovery_test|checkpoint_test|engine_test|stream_test' "$@"

cmake --preset noobs
cmake --build --preset noobs -j"$(nproc)"
ctest --preset noobs -j"$(nproc)" "$@"
