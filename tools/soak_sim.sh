#!/usr/bin/env bash
# soak_sim.sh: the nightly deterministic-simulation soak. Runs the ctest
# `soak` configuration (SimSoak.SeedSweep in sim_test: hundreds of seeded
# fault schedules across the exactly-once, failover, and routed drills)
# against an existing build tree, with failing seeds collected as an
# artifact — each line of failing_seeds.txt is an environment prefix that
# replays that schedule bit-identically:
#
#   SOP_FUZZ_SEED=<seed> SOP_SIM_SEEDS=1 build/tests/sim_test
#
# Usage: tools/soak_sim.sh [build-dir] [seeds]
#   build-dir  defaults to `build` (must already be configured)
#   seeds      defaults to 200; also settable via SOP_SIM_SEEDS
# Artifacts land in ${SOP_SOAK_ARTIFACTS:-<build-dir>/soak-artifacts}.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
export SOP_SIM_SEEDS="${2:-${SOP_SIM_SEEDS:-200}}"
export SOP_SOAK_ARTIFACTS="${SOP_SOAK_ARTIFACTS:-${BUILD_DIR}/soak-artifacts}"

if [ ! -f "${BUILD_DIR}/CMakeCache.txt" ]; then
  echo "soak_sim.sh: '${BUILD_DIR}' is not a configured build tree" >&2
  echo "  run: cmake -B ${BUILD_DIR} -S ." >&2
  exit 1
fi

mkdir -p "${SOP_SOAK_ARTIFACTS}"
cmake --build "${BUILD_DIR}" -j"$(nproc)" --target sim_test

# SOP_SOAK=1 comes from the test's ctest ENVIRONMENT property; the sweep
# prints its base seed and every failing seed unconditionally.
if ! ctest --test-dir "${BUILD_DIR}" -C soak -L soak --output-on-failure; then
  echo "soak_sim.sh: FAILED — failing schedules recorded in" >&2
  echo "  ${SOP_SOAK_ARTIFACTS}/failing_seeds.txt" >&2
  exit 1
fi
echo "soak_sim.sh: ${SOP_SIM_SEEDS} seeds clean"
