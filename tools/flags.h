// Shared command-line parsing for the sop tools.
//
// Every tool declares its flags once, as a table of (name, placeholder,
// help, binding) entries on a FlagSet; parsing, `--flag value` /
// `--flag=value` handling, strict numeric validation, unknown-flag
// diagnostics and the generated `--help` text all come from the table.
// Tool mains keep only what is genuinely tool-specific: required-flag
// checks and cross-flag constraints, reported via flags.UsageError().
//
// Also home to the small parsing helpers several tools share
// (SplitCommas, the fault-injection site=rate spec) and to the
// --kernel flag (AddKernelFlag), which selects the process-global batch
// distance backend (common/dist_kernel.h) and must behave identically in
// every tool that computes distances.
//
// Conventions (matching the pre-existing tools): value flags take their
// argument as the next argv entry or after '='; usage errors print a
// one-line message plus the usage summary and exit the Parse caller with
// status 2; --help/-h prints the full generated help and exits 0.

#ifndef SOP_TOOLS_FLAGS_H_
#define SOP_TOOLS_FLAGS_H_

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "sop/common/dist_kernel.h"
#include "sop/common/fault.h"

namespace sop {
namespace cli {

/// Splits on every comma; "a,,b" yields {"a", "", "b"} and "" yields {""}.
inline std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    const size_t comma = s.find(',', start);
    if (comma == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

/// Parses one "site=rate" fault spec ("source-read=0.01") against
/// FaultSiteName() and applies it to `injector`.
inline bool ParseFaultRate(const std::string& spec, FaultInjector* injector) {
  const size_t eq = spec.find('=');
  if (eq == std::string::npos) return false;
  const std::string site_name = spec.substr(0, eq);
  char* end = nullptr;
  const double rate = std::strtod(spec.c_str() + eq + 1, &end);
  if (end == nullptr || *end != '\0' || rate < 0.0 || rate > 1.0) {
    return false;
  }
  for (int i = 0; i < kNumFaultSites; ++i) {
    const auto site = static_cast<FaultSite>(i);
    if (site_name == FaultSiteName(site)) {
      injector->SetRate(site, rate);
      return true;
    }
  }
  return false;
}

/// A declarative flag table. Register flags, then Parse(argc, argv).
///
///   sop::cli::FlagSet flags("one-line tool description");
///   flags.Str("--workload", &workload_path, "PATH", "workload spec file");
///   flags.I64("--threads", &threads, "N", "worker threads (0 = cores)", 0);
///   int exit_code = 0;
///   if (!flags.Parse(argc, argv, &exit_code)) return exit_code;
///
/// Not thread-safe; build and parse on one thread (tool mains).
class FlagSet {
 public:
  /// `value` is the flag's argument ("" for switches). Return false and
  /// set `*error` to reject it.
  using Handler = std::function<bool(const std::string& value,
                                     std::string* error)>;

  explicit FlagSet(std::string overview) : overview_(std::move(overview)) {}

  /// A flag taking one value, fully custom-parsed.
  void Flag(const char* name, const char* placeholder, const char* help,
            Handler handler) {
    flags_.push_back(Entry{name, placeholder, help, std::move(handler),
                           /*takes_value=*/true});
  }

  /// A valueless switch.
  void Switch(const char* name, const char* help, std::function<void()> fn) {
    flags_.push_back(Entry{
        name, "", help,
        [fn = std::move(fn)](const std::string&, std::string*) {
          fn();
          return true;
        },
        /*takes_value=*/false});
  }

  void Bool(const char* name, bool* out, const char* help) {
    Switch(name, help, [out] { *out = true; });
  }

  void Str(const char* name, std::string* out, const char* placeholder,
           const char* help) {
    Flag(name, placeholder, help,
         [out](const std::string& v, std::string*) {
           *out = v;
           return true;
         });
  }

  /// Appends each occurrence (repeatable flag).
  void StrEach(const char* name, std::vector<std::string>* out,
               const char* placeholder, const char* help) {
    Flag(name, placeholder, help,
         [out](const std::string& v, std::string*) {
           out->push_back(v);
           return true;
         });
  }

  /// Appends the comma-split parts of each occurrence.
  void StrList(const char* name, std::vector<std::string>* out,
               const char* placeholder, const char* help) {
    Flag(name, placeholder, help,
         [out](const std::string& v, std::string*) {
           for (std::string& part : SplitCommas(v)) {
             out->push_back(std::move(part));
           }
           return true;
         });
  }

  void I64(const char* name, int64_t* out, const char* placeholder,
           const char* help,
           int64_t min = std::numeric_limits<int64_t>::min()) {
    Flag(name, placeholder, help,
         [out, min](const std::string& v, std::string* error) {
           int64_t parsed = 0;
           if (!ParseI64(v, &parsed) || parsed < min) {
             *error = min > std::numeric_limits<int64_t>::min()
                          ? "expect an integer >= " + std::to_string(min)
                          : "expect an integer";
             return false;
           }
           *out = parsed;
           return true;
         });
  }

  void Int(const char* name, int* out, const char* placeholder,
           const char* help, int min = std::numeric_limits<int>::min()) {
    Flag(name, placeholder, help,
         [out, min](const std::string& v, std::string* error) {
           int64_t parsed = 0;
           if (!ParseI64(v, &parsed) || parsed < min ||
               parsed > std::numeric_limits<int>::max()) {
             *error = "expect an integer >= " + std::to_string(min);
             return false;
           }
           *out = static_cast<int>(parsed);
           return true;
         });
  }

  void U64(const char* name, uint64_t* out, const char* placeholder,
           const char* help) {
    Flag(name, placeholder, help,
         [out](const std::string& v, std::string* error) {
           int64_t parsed = 0;
           if (!ParseI64(v, &parsed) || parsed < 0) {
             *error = "expect an integer >= 0";
             return false;
           }
           *out = static_cast<uint64_t>(parsed);
           return true;
         });
  }

  void Size(const char* name, size_t* out, const char* placeholder,
            const char* help, int64_t min = 0) {
    Flag(name, placeholder, help,
         [out, min](const std::string& v, std::string* error) {
           int64_t parsed = 0;
           if (!ParseI64(v, &parsed) || parsed < min) {
             *error = "expect an integer >= " + std::to_string(min);
             return false;
           }
           *out = static_cast<size_t>(parsed);
           return true;
         });
  }

  void F64(const char* name, double* out, const char* placeholder,
           const char* help,
           double min = -std::numeric_limits<double>::infinity()) {
    Flag(name, placeholder, help,
         [out, min](const std::string& v, std::string* error) {
           char* end = nullptr;
           errno = 0;
           const double parsed = std::strtod(v.c_str(), &end);
           if (v.empty() || end == nullptr || *end != '\0' || errno != 0 ||
               parsed < min) {
             *error = "expect a number >= " + std::to_string(min);
             return false;
           }
           *out = parsed;
           return true;
         });
  }

  /// Parses argv. Returns true when the program should proceed; false when
  /// it should exit with `*exit_code` (0 after --help, 2 on usage errors —
  /// the diagnostic and usage text have been printed to stderr).
  bool Parse(int argc, char** argv, int* exit_code) {
    argv0_ = argv[0];
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        PrintHelp(stdout);
        *exit_code = 0;
        return false;
      }
      // --flag=value form.
      std::string inline_value;
      bool has_inline_value = false;
      const size_t eq = arg.find('=');
      if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-' &&
          eq != std::string::npos) {
        inline_value = arg.substr(eq + 1);
        has_inline_value = true;
        arg.resize(eq);
      }
      const Entry* entry = Find(arg);
      if (entry == nullptr) {
        std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
        PrintUsage(stderr);
        *exit_code = 2;
        return false;
      }
      std::string value;
      if (entry->takes_value) {
        if (has_inline_value) {
          value = std::move(inline_value);
        } else if (i + 1 < argc) {
          value = argv[++i];
        } else {
          std::fprintf(stderr, "%s requires a value\n", arg.c_str());
          PrintUsage(stderr);
          *exit_code = 2;
          return false;
        }
      } else if (has_inline_value) {
        std::fprintf(stderr, "%s does not take a value\n", arg.c_str());
        PrintUsage(stderr);
        *exit_code = 2;
        return false;
      }
      std::string error;
      if (!entry->handler(value, &error)) {
        if (error.empty()) error = "invalid value";
        std::fprintf(stderr, "%s: %s (got '%s')\n", arg.c_str(),
                     error.c_str(), value.c_str());
        PrintUsage(stderr);
        *exit_code = 2;
        return false;
      }
    }
    return true;
  }

  /// Reports a post-parse usage error (missing required flag, conflicting
  /// flags) the same way Parse() reports its own; the caller returns 2.
  void UsageError(const std::string& message) const {
    std::fprintf(stderr, "%s\n", message.c_str());
    PrintUsage(stderr);
  }

  /// The one-line usage summary plus a pointer at --help.
  void PrintUsage(FILE* f) const {
    std::fprintf(f, "usage: %s [flags]   (see %s --help)\n", argv0_.c_str(),
                 argv0_.c_str());
  }

  /// The full generated help: usage, overview, aligned flag table.
  void PrintHelp(FILE* f) const {
    std::fprintf(f, "usage: %s [flags]\n\n%s\n\nflags:\n", argv0_.c_str(),
                 overview_.c_str());
    size_t width = 0;
    for (const Entry& e : flags_) width = std::max(width, HeadOf(e).size());
    for (const Entry& e : flags_) {
      std::fprintf(f, "  %-*s  %s\n", static_cast<int>(width),
                   HeadOf(e).c_str(), e.help.c_str());
    }
    std::fprintf(f, "  %-*s  %s\n", static_cast<int>(width), "--help, -h",
                 "print this help and exit");
  }

 private:
  struct Entry {
    std::string name;         // "--workload"
    std::string placeholder;  // "PATH" ("" for switches)
    std::string help;
    Handler handler;
    bool takes_value;
  };

  // Strict full-string base-10 integer parse.
  static bool ParseI64(const std::string& s, int64_t* out) {
    if (s.empty()) return false;
    char* end = nullptr;
    errno = 0;
    const long long parsed = std::strtoll(s.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || errno != 0) return false;
    *out = parsed;
    return true;
  }

  static std::string HeadOf(const Entry& e) {
    return e.placeholder.empty() ? e.name : e.name + " " + e.placeholder;
  }

  const Entry* Find(const std::string& name) const {
    for (const Entry& e : flags_) {
      if (e.name == name) return &e;
    }
    return nullptr;
  }

  std::string overview_;
  std::string argv0_ = "sop";
  std::vector<Entry> flags_;
};

/// Registers --kernel on `flags`: selects the process-global batch
/// distance backend for every detector in this process. "auto" upgrades
/// to the best backend the CPU supports; explicit "avx2" fails fast on
/// machines without it.
inline void AddKernelFlag(FlagSet* flags) {
  flags->Flag(
      "--kernel", "scalar|avx2|auto",
      "batch distance kernel backend (default scalar; auto = best "
      "supported; emissions are identical across backends)",
      [](const std::string& v, std::string* error) {
        KernelBackend backend = KernelBackend::kScalar;
        if (!ParseKernelBackend(v, &backend)) {
          *error = "unknown or unsupported backend";
          return false;
        }
        SetKernelBackend(backend);
        return true;
      });
}

}  // namespace cli
}  // namespace sop

#endif  // SOP_TOOLS_FLAGS_H_
