file(REMOVE_RECURSE
  "CMakeFiles/fraud_monitoring.dir/fraud_monitoring.cpp.o"
  "CMakeFiles/fraud_monitoring.dir/fraud_monitoring.cpp.o.d"
  "fraud_monitoring"
  "fraud_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fraud_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
