# Empty compiler generated dependencies file for fraud_monitoring.
# This may be replaced when dependencies are built.
