# Empty dependencies file for dynamic_analysts.
# This may be replaced when dependencies are built.
