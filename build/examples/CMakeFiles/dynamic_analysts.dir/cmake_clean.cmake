file(REMOVE_RECURSE
  "CMakeFiles/dynamic_analysts.dir/dynamic_analysts.cpp.o"
  "CMakeFiles/dynamic_analysts.dir/dynamic_analysts.cpp.o.d"
  "dynamic_analysts"
  "dynamic_analysts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_analysts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
