file(REMOVE_RECURSE
  "CMakeFiles/sop_invariants_test.dir/sop_invariants_test.cc.o"
  "CMakeFiles/sop_invariants_test.dir/sop_invariants_test.cc.o.d"
  "sop_invariants_test"
  "sop_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sop_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
