# Empty dependencies file for sop_invariants_test.
# This may be replaced when dependencies are built.
