file(REMOVE_RECURSE
  "libsop_test_util.a"
)
