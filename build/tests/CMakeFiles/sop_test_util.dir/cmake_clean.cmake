file(REMOVE_RECURSE
  "CMakeFiles/sop_test_util.dir/test_util.cc.o"
  "CMakeFiles/sop_test_util.dir/test_util.cc.o.d"
  "libsop_test_util.a"
  "libsop_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sop_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
