# Empty compiler generated dependencies file for sop_test_util.
# This may be replaced when dependencies are built.
