# Empty compiler generated dependencies file for lsky_test.
# This may be replaced when dependencies are built.
