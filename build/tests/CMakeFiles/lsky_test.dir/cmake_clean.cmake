file(REMOVE_RECURSE
  "CMakeFiles/lsky_test.dir/lsky_test.cc.o"
  "CMakeFiles/lsky_test.dir/lsky_test.cc.o.d"
  "lsky_test"
  "lsky_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsky_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
