# Empty compiler generated dependencies file for sop_detector_test.
# This may be replaced when dependencies are built.
