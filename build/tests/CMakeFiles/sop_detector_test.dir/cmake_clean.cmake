file(REMOVE_RECURSE
  "CMakeFiles/sop_detector_test.dir/sop_detector_test.cc.o"
  "CMakeFiles/sop_detector_test.dir/sop_detector_test.cc.o.d"
  "sop_detector_test"
  "sop_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sop_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
