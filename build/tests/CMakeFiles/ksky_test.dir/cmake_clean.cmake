file(REMOVE_RECURSE
  "CMakeFiles/ksky_test.dir/ksky_test.cc.o"
  "CMakeFiles/ksky_test.dir/ksky_test.cc.o.d"
  "ksky_test"
  "ksky_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksky_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
