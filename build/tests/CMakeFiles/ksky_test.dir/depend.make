# Empty dependencies file for ksky_test.
# This may be replaced when dependencies are built.
