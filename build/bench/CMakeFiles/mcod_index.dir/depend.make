# Empty dependencies file for mcod_index.
# This may be replaced when dependencies are built.
