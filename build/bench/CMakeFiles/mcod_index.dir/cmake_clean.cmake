file(REMOVE_RECURSE
  "CMakeFiles/mcod_index.dir/mcod_index.cc.o"
  "CMakeFiles/mcod_index.dir/mcod_index.cc.o.d"
  "mcod_index"
  "mcod_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcod_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
