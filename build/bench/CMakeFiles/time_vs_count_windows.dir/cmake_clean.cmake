file(REMOVE_RECURSE
  "CMakeFiles/time_vs_count_windows.dir/time_vs_count_windows.cc.o"
  "CMakeFiles/time_vs_count_windows.dir/time_vs_count_windows.cc.o.d"
  "time_vs_count_windows"
  "time_vs_count_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_vs_count_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
