# Empty dependencies file for time_vs_count_windows.
# This may be replaced when dependencies are built.
