# Empty dependencies file for ablation_sop.
# This may be replaced when dependencies are built.
