file(REMOVE_RECURSE
  "CMakeFiles/ablation_sop.dir/ablation_sop.cc.o"
  "CMakeFiles/ablation_sop.dir/ablation_sop.cc.o.d"
  "ablation_sop"
  "ablation_sop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
