file(REMOVE_RECURSE
  "CMakeFiles/ablation_group_sharing.dir/ablation_group_sharing.cc.o"
  "CMakeFiles/ablation_group_sharing.dir/ablation_group_sharing.cc.o.d"
  "ablation_group_sharing"
  "ablation_group_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_group_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
