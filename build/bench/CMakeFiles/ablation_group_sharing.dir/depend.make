# Empty dependencies file for ablation_group_sharing.
# This may be replaced when dependencies are built.
