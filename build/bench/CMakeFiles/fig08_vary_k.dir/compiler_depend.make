# Empty compiler generated dependencies file for fig08_vary_k.
# This may be replaced when dependencies are built.
