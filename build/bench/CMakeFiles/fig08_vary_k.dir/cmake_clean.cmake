file(REMOVE_RECURSE
  "CMakeFiles/fig08_vary_k.dir/fig08_vary_k.cc.o"
  "CMakeFiles/fig08_vary_k.dir/fig08_vary_k.cc.o.d"
  "fig08_vary_k"
  "fig08_vary_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_vary_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
