# Empty dependencies file for fig09_vary_k_r.
# This may be replaced when dependencies are built.
