file(REMOVE_RECURSE
  "CMakeFiles/fig09_vary_k_r.dir/fig09_vary_k_r.cc.o"
  "CMakeFiles/fig09_vary_k_r.dir/fig09_vary_k_r.cc.o.d"
  "fig09_vary_k_r"
  "fig09_vary_k_r.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_vary_k_r.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
