# Empty dependencies file for fig11_vary_win.
# This may be replaced when dependencies are built.
