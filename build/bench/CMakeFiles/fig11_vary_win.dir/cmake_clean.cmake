file(REMOVE_RECURSE
  "CMakeFiles/fig11_vary_win.dir/fig11_vary_win.cc.o"
  "CMakeFiles/fig11_vary_win.dir/fig11_vary_win.cc.o.d"
  "fig11_vary_win"
  "fig11_vary_win.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_vary_win.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
