file(REMOVE_RECURSE
  "CMakeFiles/fig10_small_workload.dir/fig10_small_workload.cc.o"
  "CMakeFiles/fig10_small_workload.dir/fig10_small_workload.cc.o.d"
  "fig10_small_workload"
  "fig10_small_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_small_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
