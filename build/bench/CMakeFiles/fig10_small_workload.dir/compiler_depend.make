# Empty compiler generated dependencies file for fig10_small_workload.
# This may be replaced when dependencies are built.
