# Empty dependencies file for fig12_vary_win_slide.
# This may be replaced when dependencies are built.
