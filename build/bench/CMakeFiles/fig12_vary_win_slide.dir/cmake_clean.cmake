file(REMOVE_RECURSE
  "CMakeFiles/fig12_vary_win_slide.dir/fig12_vary_win_slide.cc.o"
  "CMakeFiles/fig12_vary_win_slide.dir/fig12_vary_win_slide.cc.o.d"
  "fig12_vary_win_slide"
  "fig12_vary_win_slide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_vary_win_slide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
