file(REMOVE_RECURSE
  "CMakeFiles/fig07_vary_r.dir/fig07_vary_r.cc.o"
  "CMakeFiles/fig07_vary_r.dir/fig07_vary_r.cc.o.d"
  "fig07_vary_r"
  "fig07_vary_r.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_vary_r.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
