# Empty dependencies file for fig07_vary_r.
# This may be replaced when dependencies are built.
