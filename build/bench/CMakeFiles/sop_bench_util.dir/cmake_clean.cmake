file(REMOVE_RECURSE
  "CMakeFiles/sop_bench_util.dir/figure.cc.o"
  "CMakeFiles/sop_bench_util.dir/figure.cc.o.d"
  "libsop_bench_util.a"
  "libsop_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sop_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
