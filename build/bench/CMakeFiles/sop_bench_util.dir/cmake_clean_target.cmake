file(REMOVE_RECURSE
  "libsop_bench_util.a"
)
