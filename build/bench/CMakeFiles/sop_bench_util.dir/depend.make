# Empty dependencies file for sop_bench_util.
# This may be replaced when dependencies are built.
