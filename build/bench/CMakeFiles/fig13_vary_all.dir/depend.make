# Empty dependencies file for fig13_vary_all.
# This may be replaced when dependencies are built.
