
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig13_vary_all.cc" "bench/CMakeFiles/fig13_vary_all.dir/fig13_vary_all.cc.o" "gcc" "bench/CMakeFiles/fig13_vary_all.dir/fig13_vary_all.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/sop_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sop_factory.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sop_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sop_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sop_report.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sop_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sop_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sop_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sop_detector_iface.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sop_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sop_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
