file(REMOVE_RECURSE
  "CMakeFiles/fig13_vary_all.dir/fig13_vary_all.cc.o"
  "CMakeFiles/fig13_vary_all.dir/fig13_vary_all.cc.o.d"
  "fig13_vary_all"
  "fig13_vary_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_vary_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
