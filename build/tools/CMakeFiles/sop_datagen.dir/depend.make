# Empty dependencies file for sop_datagen.
# This may be replaced when dependencies are built.
