file(REMOVE_RECURSE
  "CMakeFiles/sop_datagen.dir/sop_datagen.cc.o"
  "CMakeFiles/sop_datagen.dir/sop_datagen.cc.o.d"
  "sop_datagen"
  "sop_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sop_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
