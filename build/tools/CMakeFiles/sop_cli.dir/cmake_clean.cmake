file(REMOVE_RECURSE
  "CMakeFiles/sop_cli.dir/sop_cli.cc.o"
  "CMakeFiles/sop_cli.dir/sop_cli.cc.o.d"
  "sop_cli"
  "sop_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sop_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
