# Empty dependencies file for sop_cli.
# This may be replaced when dependencies are built.
