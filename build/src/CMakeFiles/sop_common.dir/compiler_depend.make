# Empty compiler generated dependencies file for sop_common.
# This may be replaced when dependencies are built.
