file(REMOVE_RECURSE
  "CMakeFiles/sop_common.dir/sop/common/distance.cc.o"
  "CMakeFiles/sop_common.dir/sop/common/distance.cc.o.d"
  "CMakeFiles/sop_common.dir/sop/common/random.cc.o"
  "CMakeFiles/sop_common.dir/sop/common/random.cc.o.d"
  "libsop_common.a"
  "libsop_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sop_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
