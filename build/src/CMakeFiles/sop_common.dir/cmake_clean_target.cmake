file(REMOVE_RECURSE
  "libsop_common.a"
)
