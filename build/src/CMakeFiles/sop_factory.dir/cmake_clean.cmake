file(REMOVE_RECURSE
  "CMakeFiles/sop_factory.dir/sop/detector/factory.cc.o"
  "CMakeFiles/sop_factory.dir/sop/detector/factory.cc.o.d"
  "libsop_factory.a"
  "libsop_factory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sop_factory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
