# Empty dependencies file for sop_factory.
# This may be replaced when dependencies are built.
