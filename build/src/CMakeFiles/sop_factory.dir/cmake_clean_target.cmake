file(REMOVE_RECURSE
  "libsop_factory.a"
)
