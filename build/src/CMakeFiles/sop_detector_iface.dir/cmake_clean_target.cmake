file(REMOVE_RECURSE
  "libsop_detector_iface.a"
)
