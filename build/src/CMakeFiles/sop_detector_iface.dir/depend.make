# Empty dependencies file for sop_detector_iface.
# This may be replaced when dependencies are built.
