file(REMOVE_RECURSE
  "CMakeFiles/sop_detector_iface.dir/sop/detector/detector.cc.o"
  "CMakeFiles/sop_detector_iface.dir/sop/detector/detector.cc.o.d"
  "CMakeFiles/sop_detector_iface.dir/sop/detector/driver.cc.o"
  "CMakeFiles/sop_detector_iface.dir/sop/detector/driver.cc.o.d"
  "CMakeFiles/sop_detector_iface.dir/sop/detector/metrics.cc.o"
  "CMakeFiles/sop_detector_iface.dir/sop/detector/metrics.cc.o.d"
  "CMakeFiles/sop_detector_iface.dir/sop/detector/partitioned.cc.o"
  "CMakeFiles/sop_detector_iface.dir/sop/detector/partitioned.cc.o.d"
  "libsop_detector_iface.a"
  "libsop_detector_iface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sop_detector_iface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
