file(REMOVE_RECURSE
  "libsop_query.a"
)
