
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sop/query/plan.cc" "src/CMakeFiles/sop_query.dir/sop/query/plan.cc.o" "gcc" "src/CMakeFiles/sop_query.dir/sop/query/plan.cc.o.d"
  "/root/repo/src/sop/query/query.cc" "src/CMakeFiles/sop_query.dir/sop/query/query.cc.o" "gcc" "src/CMakeFiles/sop_query.dir/sop/query/query.cc.o.d"
  "/root/repo/src/sop/query/workload.cc" "src/CMakeFiles/sop_query.dir/sop/query/workload.cc.o" "gcc" "src/CMakeFiles/sop_query.dir/sop/query/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sop_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
