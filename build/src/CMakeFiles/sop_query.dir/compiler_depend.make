# Empty compiler generated dependencies file for sop_query.
# This may be replaced when dependencies are built.
