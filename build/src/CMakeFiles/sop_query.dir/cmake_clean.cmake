file(REMOVE_RECURSE
  "CMakeFiles/sop_query.dir/sop/query/plan.cc.o"
  "CMakeFiles/sop_query.dir/sop/query/plan.cc.o.d"
  "CMakeFiles/sop_query.dir/sop/query/query.cc.o"
  "CMakeFiles/sop_query.dir/sop/query/query.cc.o.d"
  "CMakeFiles/sop_query.dir/sop/query/workload.cc.o"
  "CMakeFiles/sop_query.dir/sop/query/workload.cc.o.d"
  "libsop_query.a"
  "libsop_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sop_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
