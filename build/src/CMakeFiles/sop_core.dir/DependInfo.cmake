
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sop/core/checkpoint.cc" "src/CMakeFiles/sop_core.dir/sop/core/checkpoint.cc.o" "gcc" "src/CMakeFiles/sop_core.dir/sop/core/checkpoint.cc.o.d"
  "/root/repo/src/sop/core/grouped_sop.cc" "src/CMakeFiles/sop_core.dir/sop/core/grouped_sop.cc.o" "gcc" "src/CMakeFiles/sop_core.dir/sop/core/grouped_sop.cc.o.d"
  "/root/repo/src/sop/core/ksky.cc" "src/CMakeFiles/sop_core.dir/sop/core/ksky.cc.o" "gcc" "src/CMakeFiles/sop_core.dir/sop/core/ksky.cc.o.d"
  "/root/repo/src/sop/core/lsky.cc" "src/CMakeFiles/sop_core.dir/sop/core/lsky.cc.o" "gcc" "src/CMakeFiles/sop_core.dir/sop/core/lsky.cc.o.d"
  "/root/repo/src/sop/core/multi_attribute.cc" "src/CMakeFiles/sop_core.dir/sop/core/multi_attribute.cc.o" "gcc" "src/CMakeFiles/sop_core.dir/sop/core/multi_attribute.cc.o.d"
  "/root/repo/src/sop/core/session.cc" "src/CMakeFiles/sop_core.dir/sop/core/session.cc.o" "gcc" "src/CMakeFiles/sop_core.dir/sop/core/session.cc.o.d"
  "/root/repo/src/sop/core/sop_detector.cc" "src/CMakeFiles/sop_core.dir/sop/core/sop_detector.cc.o" "gcc" "src/CMakeFiles/sop_core.dir/sop/core/sop_detector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sop_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sop_detector_iface.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sop_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
