file(REMOVE_RECURSE
  "libsop_core.a"
)
