file(REMOVE_RECURSE
  "CMakeFiles/sop_core.dir/sop/core/checkpoint.cc.o"
  "CMakeFiles/sop_core.dir/sop/core/checkpoint.cc.o.d"
  "CMakeFiles/sop_core.dir/sop/core/grouped_sop.cc.o"
  "CMakeFiles/sop_core.dir/sop/core/grouped_sop.cc.o.d"
  "CMakeFiles/sop_core.dir/sop/core/ksky.cc.o"
  "CMakeFiles/sop_core.dir/sop/core/ksky.cc.o.d"
  "CMakeFiles/sop_core.dir/sop/core/lsky.cc.o"
  "CMakeFiles/sop_core.dir/sop/core/lsky.cc.o.d"
  "CMakeFiles/sop_core.dir/sop/core/multi_attribute.cc.o"
  "CMakeFiles/sop_core.dir/sop/core/multi_attribute.cc.o.d"
  "CMakeFiles/sop_core.dir/sop/core/session.cc.o"
  "CMakeFiles/sop_core.dir/sop/core/session.cc.o.d"
  "CMakeFiles/sop_core.dir/sop/core/sop_detector.cc.o"
  "CMakeFiles/sop_core.dir/sop/core/sop_detector.cc.o.d"
  "libsop_core.a"
  "libsop_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sop_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
