# Empty compiler generated dependencies file for sop_core.
# This may be replaced when dependencies are built.
