# Empty compiler generated dependencies file for sop_gen.
# This may be replaced when dependencies are built.
