file(REMOVE_RECURSE
  "CMakeFiles/sop_gen.dir/sop/gen/stt.cc.o"
  "CMakeFiles/sop_gen.dir/sop/gen/stt.cc.o.d"
  "CMakeFiles/sop_gen.dir/sop/gen/synthetic.cc.o"
  "CMakeFiles/sop_gen.dir/sop/gen/synthetic.cc.o.d"
  "CMakeFiles/sop_gen.dir/sop/gen/workload_gen.cc.o"
  "CMakeFiles/sop_gen.dir/sop/gen/workload_gen.cc.o.d"
  "libsop_gen.a"
  "libsop_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sop_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
