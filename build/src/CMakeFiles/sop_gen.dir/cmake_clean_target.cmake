file(REMOVE_RECURSE
  "libsop_gen.a"
)
