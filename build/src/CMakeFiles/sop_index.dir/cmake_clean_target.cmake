file(REMOVE_RECURSE
  "libsop_index.a"
)
