file(REMOVE_RECURSE
  "CMakeFiles/sop_index.dir/sop/index/grid.cc.o"
  "CMakeFiles/sop_index.dir/sop/index/grid.cc.o.d"
  "libsop_index.a"
  "libsop_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sop_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
