# Empty compiler generated dependencies file for sop_index.
# This may be replaced when dependencies are built.
