# Empty dependencies file for sop_stream.
# This may be replaced when dependencies are built.
