file(REMOVE_RECURSE
  "libsop_stream.a"
)
