file(REMOVE_RECURSE
  "CMakeFiles/sop_stream.dir/sop/stream/stream_buffer.cc.o"
  "CMakeFiles/sop_stream.dir/sop/stream/stream_buffer.cc.o.d"
  "CMakeFiles/sop_stream.dir/sop/stream/window.cc.o"
  "CMakeFiles/sop_stream.dir/sop/stream/window.cc.o.d"
  "libsop_stream.a"
  "libsop_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sop_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
