file(REMOVE_RECURSE
  "libsop_io.a"
)
