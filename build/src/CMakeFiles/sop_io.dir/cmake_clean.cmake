file(REMOVE_RECURSE
  "CMakeFiles/sop_io.dir/sop/io/csv.cc.o"
  "CMakeFiles/sop_io.dir/sop/io/csv.cc.o.d"
  "CMakeFiles/sop_io.dir/sop/io/workload_parser.cc.o"
  "CMakeFiles/sop_io.dir/sop/io/workload_parser.cc.o.d"
  "libsop_io.a"
  "libsop_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sop_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
