# Empty dependencies file for sop_io.
# This may be replaced when dependencies are built.
