file(REMOVE_RECURSE
  "CMakeFiles/sop_report.dir/sop/report/aggregate.cc.o"
  "CMakeFiles/sop_report.dir/sop/report/aggregate.cc.o.d"
  "libsop_report.a"
  "libsop_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sop_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
