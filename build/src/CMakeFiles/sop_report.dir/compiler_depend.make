# Empty compiler generated dependencies file for sop_report.
# This may be replaced when dependencies are built.
