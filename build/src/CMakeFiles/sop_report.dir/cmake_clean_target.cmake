file(REMOVE_RECURSE
  "libsop_report.a"
)
