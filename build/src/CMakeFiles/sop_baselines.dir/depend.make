# Empty dependencies file for sop_baselines.
# This may be replaced when dependencies are built.
