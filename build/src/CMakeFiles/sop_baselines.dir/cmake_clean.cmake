file(REMOVE_RECURSE
  "CMakeFiles/sop_baselines.dir/sop/baselines/leap.cc.o"
  "CMakeFiles/sop_baselines.dir/sop/baselines/leap.cc.o.d"
  "CMakeFiles/sop_baselines.dir/sop/baselines/mcod.cc.o"
  "CMakeFiles/sop_baselines.dir/sop/baselines/mcod.cc.o.d"
  "CMakeFiles/sop_baselines.dir/sop/baselines/naive.cc.o"
  "CMakeFiles/sop_baselines.dir/sop/baselines/naive.cc.o.d"
  "libsop_baselines.a"
  "libsop_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sop_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
