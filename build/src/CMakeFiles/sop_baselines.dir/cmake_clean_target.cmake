file(REMOVE_RECURSE
  "libsop_baselines.a"
)
