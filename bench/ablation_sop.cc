// Ablation study of SOP's design choices (DESIGN.md Sec. 8):
//   1. Safe-For-All inlier pruning (Alg. 3 line 2)
//   2. K-SKY early termination (layer-1 saturation, Alg. 1 lines 12-13)
//   3. Def. 6 condition-3 pruning (group-aware skyband membership)
// Each is switched off individually (and all together); results must stay
// identical (asserted), only cost changes.
//
// Two workloads are ablated: case A (varying r, fixed k=30) where points
// become Safe-For-All quickly, and the fully general case G where the
// largest-k group rarely lets a point retire — showing which optimization
// carries which regime.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_data.h"
#include "figure.h"
#include "sop/core/sop_detector.h"
#include "sop/detector/driver.h"

namespace {

using namespace sop;
using namespace sop::bench;

struct Variant {
  const char* name;
  SopDetector::Options options;
};

std::vector<Variant> Variants() {
  std::vector<Variant> variants;
  variants.push_back({"full (paper)", {}});
  {
    SopDetector::Options o;
    o.safe_inlier_pruning = false;
    variants.push_back({"no safe-inlier pruning", o});
  }
  {
    SopDetector::Options o;
    o.ksky.early_termination = false;
    variants.push_back({"no early termination", o});
  }
  {
    SopDetector::Options o;
    o.ksky.condition3_pruning = false;
    variants.push_back({"no Def.6 cond-3 pruning", o});
  }
  {
    SopDetector::Options o;
    o.safe_inlier_pruning = false;
    o.ksky.early_termination = false;
    o.ksky.condition3_pruning = false;
    variants.push_back({"all optimizations off", o});
  }
  return variants;
}

// Runs all variants over one workload; returns false on a result mismatch.
bool RunAblation(const char* label, const Workload& workload,
                 int64_t stream_n) {
  std::printf(
      "----------------------------------------------------------------\n");
  std::printf("%s (%zu queries, %lld-point synthetic stream)\n", label,
              workload.num_queries(), static_cast<long long>(stream_n));
  std::printf(
      "----------------------------------------------------------------\n");
  std::printf("%-28s %12s %12s %14s %16s %12s %12s\n", "variant",
              "cpu ms/win", "peak MB", "K-SKY scans", "distances",
              "safe pts", "outliers");
  uint64_t reference_outliers = 0;
  bool first = true;
  for (const Variant& v : Variants()) {
    SopDetector detector(workload, v.options);
    gen::SyntheticOptions source_options;
    source_options.seed = 20160626;
    gen::SyntheticSource source(stream_n, source_options);
    const RunMetrics metrics = RunStream(workload, &source, &detector);
    if (first) {
      reference_outliers = metrics.total_outliers;
      first = false;
    } else if (metrics.total_outliers != reference_outliers) {
      std::printf("ERROR: variant '%s' changed the results!\n", v.name);
      return false;
    }
    std::printf("%-28s %12.3f %12.3f %14lld %16lld %12lld %12llu\n", v.name,
                metrics.avg_cpu_ms_per_window,
                static_cast<double>(metrics.peak_memory_bytes) / 1048576.0,
                static_cast<long long>(detector.stats().ksky_scans),
                static_cast<long long>(detector.stats().distances_computed),
                static_cast<long long>(detector.stats().safe_points_discovered),
                static_cast<unsigned long long>(metrics.total_outliers));
    std::printf(
        "RESULT fig=ablation workload=\"%s\" variant=\"%s\" "
        "metric=cpu_ms_per_window value=%.4f\n",
        label, v.name, metrics.avg_cpu_ms_per_window);
    std::fflush(stdout);
  }
  return true;
}

}  // namespace

int main() {
  const int64_t kStream = FastMode() ? 6000 : 20000;
  const size_t kQueries = FastMode() ? 100 : 1000;

  std::printf(
      "================================================================\n");
  std::printf("Ablation — SOP design choices\n");
  std::printf(
      "================================================================\n");

  gen::WorkloadGenOptions case_a;
  case_a.win_fixed = 10000;
  case_a.slide_fixed = 500;
  case_a.k_fixed = 30;
  const Workload workload_a = gen::GenerateWorkload(
      gen::WorkloadCase::kA, kQueries, WindowType::kCount, case_a);
  if (!RunAblation("case A: varying r, k=30", workload_a, kStream)) return 1;

  gen::WorkloadGenOptions case_g;
  case_g.win_lo = 1000;
  case_g.win_hi = 10000;
  case_g.slide_lo = 500;
  case_g.slide_hi = 5000;
  case_g.slide_quantum = 500;
  const Workload workload_g = gen::GenerateWorkload(
      gen::WorkloadCase::kG, kQueries, WindowType::kCount, case_g);
  if (!RunAblation("case G: all four parameters vary", workload_g, kStream)) {
    return 1;
  }
  return 0;
}
