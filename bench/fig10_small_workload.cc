// Fig. 10: small workloads on synthetic data.
//   (a) 1 / 2 / 4 / 8 queries over the same attribute set (case C pattern
//       parameters) — shows SOP adds no overhead vs. the single-query
//       state of the art.
//   (b) queries split across 3 attribute groups (1..4 queries per group) —
//       exercises the divide-and-conquer multi-attribute extension.

#include <memory>

#include "bench_data.h"
#include "figure.h"
#include "sop/common/random.h"

namespace {

using namespace sop;
using namespace sop::bench;

// 3-D synthetic stream for part (b).
StreamFactory Synthetic3D(int64_t n) {
  return [n]() -> std::unique_ptr<StreamSource> {
    gen::SyntheticOptions options;
    options.dimensions = 3;
    options.seed = 20160626;
    return std::make_unique<gen::SyntheticSource>(n, options);
  };
}

// Part (b) workload: `per_group` queries in each of three attribute
// groups ({0,1}, {1,2}, {0,2}) with case-C pattern parameters.
Workload MultiAttributeWorkload(size_t per_group) {
  Rng rng(511 + per_group);
  Workload w(WindowType::kCount);
  const int g1 = w.AddAttributeSet({0, 1});
  const int g2 = w.AddAttributeSet({1, 2});
  const int g3 = w.AddAttributeSet({0, 2});
  for (const int set : {g1, g2, g3}) {
    for (size_t i = 0; i < per_group; ++i) {
      OutlierQuery q;
      q.r = rng.UniformDouble(200.0, 2000.0);
      q.k = rng.UniformInt(30, 1499);
      q.win = 10000;
      q.slide = 500;
      q.attribute_set = set;
      w.AddQuery(q);
    }
  }
  return w;
}

}  // namespace

int main() {
  const int64_t kStream = FastMode() ? 6000 : 20000;
  gen::WorkloadGenOptions options;
  options.win_fixed = 10000;
  options.slide_fixed = 500;

  {
    FigureRunner runner("Fig.10a",
                        "Small workloads, shared attributes (case C)");
    runner.AddNote("win=10000 slide=500, k in [30,1500), r in [200,2000)");
    runner.AddNote("stream: " + std::to_string(kStream) +
                   " synthetic points");
    runner.Run({1, 2, 4, 8}, CaseWorkload(gen::WorkloadCase::kC, options),
               SyntheticStream(kStream));
  }
  {
    FigureRunner runner("Fig.10b",
                        "Small workloads, 3 attribute groups (1-4 queries "
                        "per group)");
    runner.AddNote("groups over attributes {0,1}, {1,2}, {0,2} of a 3-D "
                   "stream; divide-and-conquer split per group");
    runner.Run({3, 6, 9, 12},
               [](size_t total) { return MultiAttributeWorkload(total / 3); },
               Synthetic3D(kStream));
  }
  return 0;
}
