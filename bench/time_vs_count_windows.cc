// Validation of the paper's side claim that "time-based window processing
// achieves similar results" (Sec. 6.1): the same case-C workload runs over
// the same stream twice — once with count-based windows and once with
// time-based windows (one time unit per point, so the window contents
// coincide up to timestamp ties) — and must show comparable SOP cost.

#include <cstdio>
#include <memory>

#include "bench_data.h"
#include "figure.h"
#include "sop/detector/driver.h"
#include "sop/detector/factory.h"

int main() {
  using namespace sop;
  using namespace sop::bench;

  const int64_t kStream = FastMode() ? 6000 : 20000;
  gen::WorkloadGenOptions options;
  options.win_fixed = 10000;
  options.slide_fixed = 500;

  std::printf(
      "================================================================\n");
  std::printf("SOP under count-based vs time-based windows (case C, "
              "%lld-point synthetic stream, 1 time unit per point)\n",
              static_cast<long long>(kStream));
  std::printf(
      "================================================================\n");
  std::printf("%10s %18s %18s %16s %16s\n", "queries", "count cpu(ms)",
              "time cpu(ms)", "count mem(MB)", "time mem(MB)");

  for (const size_t num_queries : MaybeShrinkSizes({10, 100, 500})) {
    double cpu[2];
    double mem[2];
    uint64_t outliers[2];
    int i = 0;
    for (const WindowType type : {WindowType::kCount, WindowType::kTime}) {
      gen::WorkloadGenOptions per_size = options;
      per_size.seed = options.seed + num_queries * 13;
      const Workload workload = gen::GenerateWorkload(
          gen::WorkloadCase::kC, num_queries, type, per_size);
      std::unique_ptr<OutlierDetector> detector =
          CreateDetector("sop", workload);
      gen::SyntheticOptions data;
      data.seed = 20160626;  // time_step defaults to 1 unit per point
      gen::SyntheticSource source(kStream, data);
      const RunMetrics m = RunStream(workload, &source, detector.get());
      cpu[i] = m.avg_cpu_ms_per_window;
      mem[i] = static_cast<double>(m.peak_memory_bytes) / 1048576.0;
      outliers[i] = m.total_outliers;
      ++i;
    }
    std::printf("%10zu %18.3f %18.3f %16.3f %16.3f\n", num_queries, cpu[0],
                cpu[1], mem[0], mem[1]);
    std::printf("RESULT fig=time_vs_count queries=%zu count_cpu=%.4f "
                "time_cpu=%.4f count_outliers=%llu time_outliers=%llu\n",
                num_queries, cpu[0], cpu[1],
                static_cast<unsigned long long>(outliers[0]),
                static_cast<unsigned long long>(outliers[1]));
    std::fflush(stdout);
  }
  return 0;
}
