// Baseline fidelity check: MCOD with linear range scans (the SOP paper's
// characterization: "compare each data point with all the other data
// points in each window") versus MCOD with grid-indexed range scans
// (emulating the original MCOD's M-tree). Shows that even an indexed MCOD
// retains the per-point all-neighbor evidence and its memory footprint —
// the index helps CPU only.

#include <cstdio>
#include <memory>

#include "bench_data.h"
#include "figure.h"
#include "sop/detector/driver.h"
#include "sop/detector/factory.h"

int main() {
  using namespace sop;
  using namespace sop::bench;

  const int64_t kStream = FastMode() ? 8000 : 30000;
  gen::WorkloadGenOptions options;
  options.slide_fixed = 500;
  options.r_fixed = 200.0;
  options.k_fixed = 30;
  options.win_lo = 1000;
  options.win_hi = FastMode() ? 4000 : 10000;
  options.slide_quantum = 500;

  std::printf(
      "================================================================\n");
  std::printf("MCOD range-scan strategy: linear (paper's description) vs "
              "grid index (M-tree analog)\n");
  std::printf("  case-D workloads, r=200 k=30, STT-like stream of %lld "
              "trades\n",
              static_cast<long long>(kStream));
  std::printf(
      "================================================================\n");
  std::printf("%10s %16s %16s %16s %16s\n", "queries", "linear cpu(ms)",
              "grid cpu(ms)", "linear mem(MB)", "grid mem(MB)");

  for (const size_t num_queries : MaybeShrinkSizes({10, 100, 500})) {
    gen::WorkloadGenOptions per_size = options;
    per_size.seed = options.seed + num_queries * 31;
    const Workload workload = gen::GenerateWorkload(
        gen::WorkloadCase::kD, num_queries, WindowType::kCount, per_size);

    gen::SttOptions data;
    data.seed = 19980427;

    std::unique_ptr<OutlierDetector> linear = CreateDetector("mcod", workload);
    gen::SttSource s1(kStream, data);
    const RunMetrics m_linear = RunStream(workload, &s1, linear.get());

    std::unique_ptr<OutlierDetector> grid =
        CreateDetector("mcod-grid", workload);
    gen::SttSource s2(kStream, data);
    const RunMetrics m_grid = RunStream(workload, &s2, grid.get());

    if (m_linear.total_outliers != m_grid.total_outliers) {
      std::printf("ERROR: result mismatch between variants!\n");
      return 1;
    }
    std::printf("%10zu %16.3f %16.3f %16.3f %16.3f\n", num_queries,
                m_linear.avg_cpu_ms_per_window, m_grid.avg_cpu_ms_per_window,
                static_cast<double>(m_linear.peak_memory_bytes) / 1048576.0,
                static_cast<double>(m_grid.peak_memory_bytes) / 1048576.0);
    std::printf("RESULT fig=mcod_index queries=%zu linear_cpu=%.4f "
                "grid_cpu=%.4f\n",
                num_queries, m_linear.avg_cpu_ms_per_window,
                m_grid.avg_cpu_ms_per_window);
    std::fflush(stdout);
  }
  return 0;
}
