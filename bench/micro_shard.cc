// micro_shard: scale-out plane throughput — a 4-worker routed cluster
// (cluster/router.h) vs a single sop_server, same stream, same workload,
// over loopback.
//
// Both configurations ingest the identical fig-7-shaped stream (case-A
// style count windows: shared slide, k=30, varying r) through the same
// blocking wire client; the routed run fronts 4 in-process workers with
// spatial sharding + halo replication, the single run is one server. The
// emission streams are asserted identical after canonical (boundary,
// query) ordering — the merge-exactness contract — so the throughput
// columns compare the same answers.
//
// Numbers are reported honestly: on a single-core container the routed
// run cannot beat the single server (all workers share one CPU and the
// fabric adds serialization + halo duplication); the speedup column is
// the hardware story, the halo_overhead ratio is the replication tax the
// partitioner pays for exactness.
//
//   RESULT bench=micro_shard config=single|routed-4 points=... wall_ms=...
//          pps=...
//
// Output: a table, RESULT lines, and BENCH_shard.json.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "figure.h"
#include "sop/cluster/partition.h"
#include "sop/cluster/router.h"
#include "sop/gen/synthetic.h"
#include "sop/net/client.h"
#include "sop/net/server.h"

namespace sop {
namespace {

constexpr int kWorkers = 4;

struct Emitted {
  size_t query_index = 0;
  int64_t boundary = 0;
  std::vector<Seq> outliers;

  bool operator<(const Emitted& o) const {
    if (boundary != o.boundary) return boundary < o.boundary;
    if (query_index != o.query_index) return query_index < o.query_index;
    return outliers < o.outliers;
  }
  bool operator==(const Emitted& o) const {
    return boundary == o.boundary && query_index == o.query_index &&
           outliers == o.outliers;
  }
};

struct RunOutcome {
  std::vector<Emitted> emissions;
  double wall_ms = 0.0;
  uint64_t points = 0;
  bool ok = false;
};

/// Subscribes `queries`, streams `points` in slide-sized count batches,
/// and collects every emission. Identical client code against either a
/// single server or a router front — that is the point.
RunOutcome DriveIngest(int port, const std::vector<OutlierQuery>& queries,
                       const std::vector<Point>& points, int64_t slide) {
  using Clock = std::chrono::steady_clock;
  RunOutcome out;
  net::SopClient client;
  std::string error;
  if (!client.Connect("127.0.0.1", port, &error)) {
    std::fprintf(stderr, "connect: %s\n", error.c_str());
    return out;
  }
  std::map<int64_t, size_t> index_of;
  for (size_t i = 0; i < queries.size(); ++i) {
    const int64_t id = client.Subscribe(queries[i], &error);
    if (id <= 0) {
      std::fprintf(stderr, "subscribe: %s\n", error.c_str());
      return out;
    }
    index_of[id] = i;
  }
  const auto t0 = Clock::now();
  const size_t step = static_cast<size_t>(slide);
  int64_t boundary = 0;
  for (size_t start = 0; start + step <= points.size(); start += step) {
    std::vector<Point> batch(points.begin() + static_cast<ptrdiff_t>(start),
                             points.begin() + static_cast<ptrdiff_t>(start) +
                                 static_cast<ptrdiff_t>(step));
    boundary += slide;
    net::IngestAckMsg ack;
    if (!client.Ingest(boundary, batch, &ack, &error) ||
        ack.accepted != batch.size()) {
      std::fprintf(stderr, "ingest @%lld: %s\n",
                   static_cast<long long>(boundary), error.c_str());
      return out;
    }
    out.points += batch.size();
    for (net::EmissionMsg& e : client.TakeEmissions()) {
      const auto it = index_of.find(e.query_id);
      if (it == index_of.end()) continue;
      std::sort(e.outliers.begin(), e.outliers.end());
      out.emissions.push_back(
          Emitted{it->second, e.boundary, std::move(e.outliers)});
    }
  }
  out.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  std::sort(out.emissions.begin(), out.emissions.end());
  out.ok = true;
  return out;
}

}  // namespace
}  // namespace sop

int main() {
  using namespace sop;

  // Fig-7 shape (vary r, shared slide) on the synthetic default domain
  // [0, 10000]: r_max 800 is the frozen halo, < a 4-shard region width
  // (2500), so replication is a band, not a blanket.
  const bool fast = bench::FastMode();
  const int64_t n = fast ? 6000 : 30000;
  const int64_t win = fast ? 2000 : 10000;
  const int64_t slide = 500;
  std::vector<OutlierQuery> queries;
  for (const double r : {400.0, 600.0, 800.0}) {
    queries.emplace_back(r, 30, win, slide);
  }

  gen::SyntheticOptions gopt;
  gopt.seed = 20160626;
  gopt.dimensions = 2;
  std::vector<Point> points = gen::GenerateSynthetic(n, gopt);
  for (size_t i = 0; i < points.size(); ++i) {
    points[i].seq = static_cast<Seq>(i);
  }

  std::printf("micro_shard: routed %d-worker cluster vs single server "
              "(%lld points, win %lld, slide %lld, %zu queries, "
              "%u hardware threads)\n",
              kWorkers, static_cast<long long>(n),
              static_cast<long long>(win), static_cast<long long>(slide),
              queries.size(), std::thread::hardware_concurrency());

  std::string error;

  // --- single server, count windows, the no-router baseline ------------
  RunOutcome single;
  {
    net::ServerOptions so;
    so.window_type = WindowType::kCount;
    so.detector = "sop";
    so.history_window = 1 << 15;
    net::SopServer server(so);
    if (!server.Start(&error)) {
      std::fprintf(stderr, "single server: %s\n", error.c_str());
      return 1;
    }
    single = DriveIngest(server.port(), queries, points, slide);
    server.Stop();
    if (!single.ok) return 1;
  }

  // --- routed: 4 workers + router, spatial sharding + halo -------------
  RunOutcome routed;
  cluster::RouterStats rstats;
  {
    std::vector<std::unique_ptr<net::SopServer>> workers;
    cluster::RouterOptions ro;
    ro.window_type = WindowType::kCount;
    ro.detector = "sop";
    for (int i = 0; i < kWorkers; ++i) {
      net::ServerOptions wo;
      wo.window_type = WindowType::kTime;  // router translates count
      wo.detector = "sop";
      wo.history_window = 1 << 15;
      workers.push_back(std::make_unique<net::SopServer>(wo));
      if (!workers.back()->Start(&error)) {
        std::fprintf(stderr, "worker %d: %s\n", i, error.c_str());
        return 1;
      }
      ro.workers.push_back({"127.0.0.1", workers.back()->port()});
    }
    ro.partition =
        cluster::PartitionSpec::Uniform(gopt.domain_lo, gopt.domain_hi,
                                        kWorkers);
    cluster::SopRouter router(ro);
    if (!router.Start(&error)) {
      std::fprintf(stderr, "router: %s\n", error.c_str());
      return 1;
    }
    routed = DriveIngest(router.port(), queries, points, slide);
    rstats = router.stats();
    router.Stop();
    for (std::unique_ptr<net::SopServer>& w : workers) w->Stop();
    if (!routed.ok) return 1;
  }

  // Merge-exactness: the routed stream must be bit-identical after the
  // canonical ordering, or the throughput comparison is meaningless.
  if (!(single.emissions == routed.emissions)) {
    std::fprintf(stderr,
                 "FAIL: routed emissions diverge from single-node "
                 "(single %zu, routed %zu records)\n",
                 single.emissions.size(), routed.emissions.size());
    return 1;
  }
  if (rstats.degraded || rstats.worker_failures != 0) {
    std::fprintf(stderr, "FAIL: routed run degraded\n");
    return 1;
  }

  const double single_pps =
      single.wall_ms > 0.0 ? 1000.0 * single.points / single.wall_ms : 0.0;
  const double routed_pps =
      routed.wall_ms > 0.0 ? 1000.0 * routed.points / routed.wall_ms : 0.0;
  const double speedup = single_pps > 0.0 ? routed_pps / single_pps : 0.0;
  const double halo_overhead =
      rstats.ingest_points > 0
          ? static_cast<double>(rstats.routed_points) /
                static_cast<double>(rstats.ingest_points)
          : 0.0;

  std::printf("%-10s %10s %10s %12s\n", "config", "points", "wall_ms",
              "points/s");
  std::printf("%-10s %10llu %10.1f %12.0f\n", "single",
              static_cast<unsigned long long>(single.points), single.wall_ms,
              single_pps);
  std::printf("%-10s %10llu %10.1f %12.0f\n", "routed-4",
              static_cast<unsigned long long>(routed.points), routed.wall_ms,
              routed_pps);
  std::printf("speedup %.2fx, halo %.0f, replication overhead %.3fx "
              "(%llu routed / %llu ingested, %llu halo copies), "
              "%llu emissions\n",
              speedup, rstats.halo, halo_overhead,
              static_cast<unsigned long long>(rstats.routed_points),
              static_cast<unsigned long long>(rstats.ingest_points),
              static_cast<unsigned long long>(rstats.halo_points),
              static_cast<unsigned long long>(routed.emissions.size()));
  std::printf("RESULT bench=micro_shard config=single points=%llu "
              "wall_ms=%.1f pps=%.0f\n",
              static_cast<unsigned long long>(single.points), single.wall_ms,
              single_pps);
  std::printf("RESULT bench=micro_shard config=routed-4 points=%llu "
              "wall_ms=%.1f pps=%.0f\n",
              static_cast<unsigned long long>(routed.points), routed.wall_ms,
              routed_pps);

  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\n  \"bench\": \"micro_shard\",\n"
      "  \"workers\": %d,\n"
      "  \"hardware_concurrency\": %u,\n"
      "  \"points\": %lld,\n  \"win\": %lld,\n  \"slide\": %lld,\n"
      "  \"queries\": %zu,\n  \"fast\": %s,\n"
      "  \"single_pps\": %.0f,\n  \"routed_pps\": %.0f,\n"
      "  \"speedup\": %.3f,\n"
      "  \"halo\": %.1f,\n  \"halo_overhead_ratio\": %.3f,\n"
      "  \"ingest_points\": %llu,\n  \"routed_points\": %llu,\n"
      "  \"halo_points\": %llu,\n  \"emissions\": %zu\n}\n",
      kWorkers, std::thread::hardware_concurrency(),
      static_cast<long long>(n), static_cast<long long>(win),
      static_cast<long long>(slide), queries.size(),
      fast ? "true" : "false", single_pps, routed_pps, speedup, rstats.halo,
      halo_overhead, static_cast<unsigned long long>(rstats.ingest_points),
      static_cast<unsigned long long>(rstats.routed_points),
      static_cast<unsigned long long>(rstats.halo_points),
      routed.emissions.size());

  std::ofstream out("BENCH_shard.json", std::ios::binary);
  if (!out || !(out << buf) || !out.flush()) {
    std::fprintf(stderr, "cannot write BENCH_shard.json\n");
    return 1;
  }
  std::fprintf(stderr, "wrote BENCH_shard.json\n");
  return 0;
}
