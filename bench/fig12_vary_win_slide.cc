// Fig. 12: workloads with arbitrary window AND slide sizes (Table-1 case
// F) on the STT-like stream. Paper setting: r = 200, k = 30, win in
// [1K, 500K), slide in [50, 50K); 10 / 100 / 500 / 1000 queries.
//
// Scaling note: windows in [1K, 40K), slides in [500, 5K) quantized to
// 500, stream 60K trades (see fig11 and DESIGN.md Sec. 6).

#include "bench_data.h"
#include "figure.h"

int main() {
  using namespace sop;
  using namespace sop::bench;

  const int64_t kStream = FastMode() ? 12000 : 60000;
  const int64_t kWinHi = FastMode() ? 8000 : 40000;
  gen::WorkloadGenOptions options;
  options.r_fixed = 200.0;
  options.k_fixed = 30;
  options.win_lo = 1000;
  options.win_hi = kWinHi;
  options.slide_lo = 500;
  options.slide_hi = 5000;
  options.slide_quantum = 500;

  FigureRunner runner("Fig.12",
                      "Varying Win and Slide (workload F), STT stream");
  runner.AddNote("r=200 k=30, win in [1000," + std::to_string(kWinHi) +
                 "), slide in [500,5000) step 500 [paper ranges scaled]");
  runner.AddNote("stream: " + std::to_string(kStream) + " STT-like trades");
  runner.set_cap("leap", 500);
  runner.Run(MaybeShrinkSizes({10, 100, 500, 1000}),
             CaseWorkload(gen::WorkloadCase::kF, options),
             SttStream(kStream));
  return 0;
}
