// Fig. 7: workloads with arbitrary r (Table-1 case A) on synthetic data.
// Paper setting: win 10K, slide 0.5K, k = 30, r uniform in [200, 2000);
// workloads of 10 / 100 / 500 / 1000 queries.

#include "bench_data.h"
#include "figure.h"

int main() {
  using namespace sop;
  using namespace sop::bench;

  const int64_t kStream = FastMode() ? 6000 : 20000;
  gen::WorkloadGenOptions options;  // Table-2 ranges; fixed k/win/slide
  options.win_fixed = 10000;
  options.slide_fixed = 500;
  options.k_fixed = 30;

  FigureRunner runner("Fig.7", "Varying r values (workload A), synthetic");
  runner.AddNote("win=10000 slide=500 k=30, r in [200,2000)");
  runner.AddNote("stream: " + std::to_string(kStream) +
                 " synthetic points (Gaussian inliers + uniform outliers)");
  runner.Run(MaybeShrinkSizes({10, 100, 500, 1000}),
             CaseWorkload(gen::WorkloadCase::kA, options),
             SyntheticStream(kStream));
  return 0;
}
