// micro_churn: subscribe/unsubscribe cost under the session's tiered
// workload-change path — overlay swap vs rebuild-and-replay.
//
// Both configurations run the identical stream, base workload and churn
// schedule (one query removed + re-registered every few batches) through
// SopSession; the only difference is how changes are realized:
//
//   overlay   the default in-process SopDetector path: with elastic basis
//             headroom every churn is an in-place overlay swap — no
//             detector rebuild, no history replay;
//   rebuild   a DetectorBuilder hook around the same SOP algorithm, which
//             is exactly the pre-tiered behavior: every churn recompiles
//             the detector and replays the retained history.
//
// Emission totals are asserted equal, so the latency columns compare the
// same answers. Output: a table, RESULT lines, and BENCH_churn.json.
//
//   RESULT bench=micro_churn config=... churns=... churn_mean_ms=...
//          churn_max_ms=... steady_mean_ms=... replayed_points=...

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "figure.h"
#include "sop/core/session.h"
#include "sop/detector/factory.h"
#include "sop/gen/synthetic.h"

namespace sop {
namespace {

constexpr int64_t kBatch = 400;

Workload BaseWorkload() {
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(400.0, 10, 4000, kBatch));
  w.AddQuery(OutlierQuery(700.0, 20, 3200, kBatch));
  w.AddQuery(OutlierQuery(900.0, 30, 2400, kBatch * 2));
  return w;
}

struct Outcome {
  uint64_t batches = 0;
  uint64_t emissions = 0;
  uint64_t churns = 0;
  double steady_mean_ms = 0.0;
  double churn_mean_ms = 0.0;
  double churn_max_ms = 0.0;
  uint64_t overlay_changes = 0;
  uint64_t rebuilds = 0;
  uint64_t replayed_points = 0;
};

Outcome RunConfig(const std::string& config,
                  const std::vector<Point>& points, int64_t churn_every) {
  using Clock = std::chrono::steady_clock;
  const Workload base = BaseWorkload();

  SopSession session(WindowType::kCount, Metric::kEuclidean,
                     base.MaxWindow());
  if (config == "rebuild") {
    // The pre-tiered path: an opaque builder, so every change replays.
    session.SetDetectorBuilder([](const Workload& w) {
      return CreateDetector("sop", w);
    });
  }
  std::vector<QueryId> ids;
  for (const OutlierQuery& q : base.queries()) {
    ids.push_back(session.AddQuery(q));
  }

  Outcome out;
  double steady_ms = 0.0, churn_ms = 0.0;
  uint64_t steady_batches = 0, churn_batches = 0;
  bool churn_pending = false;
  int64_t boundary = 0;
  for (size_t start = 0; start + static_cast<size_t>(kBatch) <= points.size();
       start += static_cast<size_t>(kBatch)) {
    boundary += kBatch;
    std::vector<Point> batch(
        points.begin() + static_cast<ptrdiff_t>(start),
        points.begin() + static_cast<ptrdiff_t>(start) +
            static_cast<ptrdiff_t>(kBatch));
    const auto t0 = Clock::now();
    const std::vector<SessionResult> results =
        session.Advance(std::move(batch), boundary);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (churn_pending) {
      churn_ms += ms;
      out.churn_max_ms = std::max(out.churn_max_ms, ms);
      ++churn_batches;
      churn_pending = false;
    } else {
      steady_ms += ms;
      ++steady_batches;
    }
    ++out.batches;
    for (const SessionResult& r : results) {
      if (!r.outliers.empty()) ++out.emissions;
    }
    if (out.batches % static_cast<uint64_t>(churn_every) == 0) {
      const size_t j = static_cast<size_t>(out.churns % ids.size());
      session.RemoveQuery(ids[j]);
      ids[j] = session.AddQuery(base.query(j));
      ++out.churns;
      churn_pending = true;  // realized by the next Advance
    }
  }
  out.steady_mean_ms = steady_batches > 0 ? steady_ms / steady_batches : 0.0;
  out.churn_mean_ms = churn_batches > 0 ? churn_ms / churn_batches : 0.0;
  out.overlay_changes = session.change_stats().overlay_changes;
  out.rebuilds = session.change_stats().rebuilds;
  out.replayed_points = session.change_stats().replayed_points;
  return out;
}

}  // namespace
}  // namespace sop

int main() {
  using namespace sop;

  const int64_t n = bench::FastMode() ? 8000 : 40000;
  const int64_t churn_every = 5;
  gen::SyntheticOptions options;
  options.seed = 20160626;
  const std::vector<Point> points = gen::GenerateSynthetic(n, options);

  std::printf("micro_churn: workload churn, overlay swap vs "
              "rebuild-and-replay (%lld points, churn every %lld batches)\n",
              static_cast<long long>(n),
              static_cast<long long>(churn_every));
  std::printf("%-8s %8s %10s %14s %13s %12s %10s\n", "config", "churns",
              "steady_ms", "churn_mean_ms", "churn_max_ms", "replayed_pts",
              "emissions");

  std::string json = "{\n  \"bench\": \"micro_churn\",\n  \"configs\": [\n";
  uint64_t emissions[2] = {0, 0};
  const char* configs[2] = {"overlay", "rebuild"};
  for (int c = 0; c < 2; ++c) {
    const Outcome out = RunConfig(configs[c], points, churn_every);
    emissions[c] = out.emissions;
    std::printf("%-8s %8llu %10.3f %14.3f %13.3f %12llu %10llu\n",
                configs[c], static_cast<unsigned long long>(out.churns),
                out.steady_mean_ms, out.churn_mean_ms, out.churn_max_ms,
                static_cast<unsigned long long>(out.replayed_points),
                static_cast<unsigned long long>(out.emissions));
    std::printf("RESULT bench=micro_churn config=%s churns=%llu "
                "churn_mean_ms=%.3f churn_max_ms=%.3f steady_mean_ms=%.3f "
                "overlay_changes=%llu rebuilds=%llu replayed_points=%llu\n",
                configs[c], static_cast<unsigned long long>(out.churns),
                out.churn_mean_ms, out.churn_max_ms, out.steady_mean_ms,
                static_cast<unsigned long long>(out.overlay_changes),
                static_cast<unsigned long long>(out.rebuilds),
                static_cast<unsigned long long>(out.replayed_points));
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"config\": \"%s\", \"churns\": %llu, "
                  "\"churn_mean_ms\": %.3f, \"churn_max_ms\": %.3f, "
                  "\"steady_mean_ms\": %.3f, \"overlay_changes\": %llu, "
                  "\"rebuilds\": %llu, \"replayed_points\": %llu, "
                  "\"emissions\": %llu}%s\n",
                  configs[c], static_cast<unsigned long long>(out.churns),
                  out.churn_mean_ms, out.churn_max_ms, out.steady_mean_ms,
                  static_cast<unsigned long long>(out.overlay_changes),
                  static_cast<unsigned long long>(out.rebuilds),
                  static_cast<unsigned long long>(out.replayed_points),
                  static_cast<unsigned long long>(out.emissions),
                  c == 0 ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  if (emissions[0] != emissions[1]) {
    std::fprintf(stderr,
                 "FAIL: emission totals differ (overlay %llu, rebuild "
                 "%llu) — the two paths must answer identically\n",
                 static_cast<unsigned long long>(emissions[0]),
                 static_cast<unsigned long long>(emissions[1]));
    return 1;
  }

  std::ofstream out("BENCH_churn.json", std::ios::binary);
  if (!out || !(out << json) || !out.flush()) {
    std::fprintf(stderr, "cannot write BENCH_churn.json\n");
    return 1;
  }
  std::fprintf(stderr, "wrote BENCH_churn.json\n");
  return 0;
}
