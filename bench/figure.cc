#include "figure.h"

#include <cstdio>
#include <cstdlib>

#include "sop/detector/driver.h"
#include "sop/obs/metrics.h"

namespace sop {
namespace bench {

bool FastMode() {
  const char* v = std::getenv("SOP_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

namespace {

// SOP_BENCH_COUNTERS=1 turns on the observability layer and prints each
// cell's counters as machine-readable COUNTER/GAUGE/HISTO lines. Off by
// default so throughput numbers stay instrumentation-free.
bool CountersMode() {
  const char* v = std::getenv("SOP_BENCH_COUNTERS");
  return v != nullptr && v[0] == '1';
}

void PrintCellCounters(const std::string& figure_id,
                       const std::string& detector, size_t num_queries) {
  const obs::Snapshot snap = obs::MetricsRegistry::Global().TakeSnapshot();
  obs::MetricsRegistry::Global().Reset();
  for (const auto& [name, value] : snap.counters) {
    std::printf("COUNTER fig=%s detector=%s queries=%zu name=%s value=%llu\n",
                figure_id.c_str(), detector.c_str(), num_queries, name.c_str(),
                static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    std::printf("GAUGE fig=%s detector=%s queries=%zu name=%s value=%lld\n",
                figure_id.c_str(), detector.c_str(), num_queries, name.c_str(),
                static_cast<long long>(value));
  }
  for (const auto& [name, stats] : snap.histograms) {
    std::printf("HISTO fig=%s detector=%s queries=%zu name=%s count=%llu "
                "mean=%.4f p50=%.4f p95=%.4f max=%.4f\n",
                figure_id.c_str(), detector.c_str(), num_queries, name.c_str(),
                static_cast<unsigned long long>(stats.count), stats.mean,
                stats.p50, stats.p95, stats.max);
  }
}

}  // namespace

std::vector<size_t> MaybeShrinkSizes(std::vector<size_t> sizes) {
  if (!FastMode()) return sizes;
  for (size_t& s : sizes) s = std::max<size_t>(1, s / 8);
  return sizes;
}

FigureRunner::FigureRunner(std::string figure_id, std::string description)
    : figure_id_(std::move(figure_id)), description_(std::move(description)) {}

void FigureRunner::Run(const std::vector<size_t>& workload_sizes,
                       const WorkloadFactory& workload_factory,
                       const StreamFactory& stream_factory) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", figure_id_.c_str(), description_.c_str());
  for (const std::string& note : notes_) std::printf("  %s\n", note.c_str());
  if (FastMode()) std::printf("  [fast mode: sizes shrunk 8x]\n");
  std::printf("================================================================\n");

  const bool counters = CountersMode();
  if (counters) {
    obs::SetEnabled(true);
    obs::MetricsRegistry::Global().Reset();
  }

  struct Cell {
    bool ran = false;
    RunMetrics metrics;
  };
  // cells[size_index][detector_index]
  std::vector<std::vector<Cell>> cells(
      workload_sizes.size(), std::vector<Cell>(names_.size()));

  for (size_t si = 0; si < workload_sizes.size(); ++si) {
    const size_t num_queries = workload_sizes[si];
    const Workload workload = workload_factory(num_queries);
    for (size_t ki = 0; ki < names_.size(); ++ki) {
      const std::string& name = names_[ki];
      const auto cap = caps_.find(name);
      if (cap != caps_.end() && num_queries > cap->second) {
        std::printf("  [%s @ %zu queries skipped: over resource budget]\n",
                    name.c_str(), num_queries);
        continue;
      }
      std::unique_ptr<OutlierDetector> detector =
          CreateDetector(name, workload);
      std::unique_ptr<StreamSource> source = stream_factory();
      cells[si][ki].metrics =
          RunStream(workload, source.get(), detector.get());
      cells[si][ki].ran = true;
      // Incremental progress line so partial runs still carry data.
      std::printf("  [cell %s @ %zu queries: %s]\n", name.c_str(),
                  num_queries, cells[si][ki].metrics.ToString().c_str());
      if (counters) PrintCellCounters(figure_id_, name, num_queries);
      std::fflush(stdout);
    }
  }

  auto print_table = [&](const char* label, auto value_fn,
                         const char* metric_id) {
    std::printf("\n%s\n", label);
    std::printf("%10s", "queries");
    for (const std::string& name : names_) {
      std::printf(" %12s", name.c_str());
    }
    std::printf("\n");
    for (size_t si = 0; si < workload_sizes.size(); ++si) {
      std::printf("%10zu", workload_sizes[si]);
      for (size_t ki = 0; ki < names_.size(); ++ki) {
        if (cells[si][ki].ran) {
          std::printf(" %12.3f", value_fn(cells[si][ki].metrics));
        } else {
          std::printf(" %12s", "-");
        }
      }
      std::printf("\n");
    }
    // Machine-readable lines.
    for (size_t si = 0; si < workload_sizes.size(); ++si) {
      for (size_t ki = 0; ki < names_.size(); ++ki) {
        if (!cells[si][ki].ran) continue;
        std::printf("RESULT fig=%s metric=%s detector=%s queries=%zu "
                    "value=%.4f\n",
                    figure_id_.c_str(), metric_id, names_[ki].c_str(),
                    workload_sizes[si], value_fn(cells[si][ki].metrics));
      }
    }
  };

  print_table("(a) CPU time per window (ms)",
              [](const RunMetrics& m) { return m.avg_cpu_ms_per_window; },
              "cpu_ms_per_window");
  print_table("(b) Peak evidence memory (MB)",
              [](const RunMetrics& m) {
                return static_cast<double>(m.peak_memory_bytes) /
                       (1024.0 * 1024.0);
              },
              "peak_mem_mb");
  std::printf("\n");
}

}  // namespace bench
}  // namespace sop
