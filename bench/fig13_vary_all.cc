// Fig. 13: the most general case — all four parameters arbitrary (Table-1
// case G) on synthetic data, with workloads of 100 / 1,000 / 10,000 /
// 50,000 queries. This is the scalability headline: SOP's cost grows
// sub-linearly in the workload size while the baselines grow linearly (or
// cannot run at all within the resource budget).
//
// Scaling note: windows in [1K, 20K), slides in [500, 5K) step 500,
// stream 30K points; k and r use the full Table-2 ranges. LEAP and MCOD
// are capped at 125 queries (with case-G k values their per-query
// evidence / post-filter cost exceeds one machine beyond that — the paper's point). Sizes run
// descending so the headline 50K-query SOP cell completes first.

#include "bench_data.h"
#include "figure.h"

int main() {
  using namespace sop;
  using namespace sop::bench;

  const int64_t kStream = FastMode() ? 8000 : 30000;
  const int64_t kWinHi = FastMode() ? 6000 : 20000;
  gen::WorkloadGenOptions options;
  options.win_lo = 1000;
  options.win_hi = kWinHi;
  options.slide_lo = 500;
  options.slide_hi = 5000;
  options.slide_quantum = 500;

  FigureRunner runner("Fig.13",
                      "Varying K, R, Win and Slide (workload G), synthetic");
  runner.AddNote("k in [30,1500), r in [200,2000), win in [1000," +
                 std::to_string(kWinHi) + "), slide in [500,5000) step 500");
  runner.AddNote("stream: " + std::to_string(kStream) + " synthetic points");
  runner.set_cap("leap", 125);
  runner.set_cap("mcod", 125);
  runner.Run(MaybeShrinkSizes({50000, 10000, 1000, 100}),
             CaseWorkload(gen::WorkloadCase::kG, options),
             SyntheticStream(kStream));
  return 0;
}
