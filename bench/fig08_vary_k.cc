// Fig. 8: workloads with arbitrary k (Table-1 case B) on synthetic data.
// Paper setting: win 10K, slide 0.5K, r = 700, k uniform in [30, 1500);
// workloads of 10 / 100 / 500 / 1000 queries.

#include "bench_data.h"
#include "figure.h"

int main() {
  using namespace sop;
  using namespace sop::bench;

  const int64_t kStream = FastMode() ? 6000 : 20000;
  gen::WorkloadGenOptions options;
  options.win_fixed = 10000;
  options.slide_fixed = 500;
  options.r_fixed = 700.0;

  // LEAP's per-query evidence (up to k preceding neighbors per point per
  // query, k up to 1500) exceeds this machine's memory beyond ~100
  // queries — the per-query scaling wall the paper demonstrates.
  FigureRunner runner("Fig.8", "Varying k values (workload B), synthetic");
  runner.AddNote("win=10000 slide=500 r=700, k in [30,1500)");
  runner.AddNote("stream: " + std::to_string(kStream) + " synthetic points");
  runner.set_cap("leap", 100);
  runner.Run(MaybeShrinkSizes({10, 100, 500, 1000}),
             CaseWorkload(gen::WorkloadCase::kB, options),
             SyntheticStream(kStream));
  return 0;
}
