// micro_parallel: serial vs pooled PartitionedDetector on a
// multi-attribute workload.
//
// The workload spans 4 attribute subsets of a 4-dimensional synthetic
// stream, so MultiAttributeDetector holds 4 independent SOP children —
// exactly the partition structure the execution engine fans out across
// its ThreadPool. Every configuration streams identical bytes and the
// emission/outlier totals are asserted equal, so the wall-clock column is
// an apples-to-apples measurement of the fan-out.
//
// Speedup is bounded by the machine: on a single hardware core the pooled
// runs time-slice and the speedup column stays ~1.0x (the run then mostly
// validates overhead); with >= 4 cores the 4-partition workload is
// expected to reach >= 1.5x at 4 threads.
//
// Output: one table row per thread count plus RESULT lines
//   RESULT bench=micro_parallel threads=T wall_ms=... speedup=...

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "figure.h"
#include "sop/common/stopwatch.h"
#include "sop/core/multi_attribute.h"
#include "sop/core/sop_detector.h"
#include "sop/detector/engine.h"
#include "sop/gen/synthetic.h"

namespace sop {
namespace {

Workload BuildWorkload() {
  Workload w(WindowType::kCount);
  const int set_a = w.AddAttributeSet({0});
  const int set_b = w.AddAttributeSet({1});
  const int set_c = w.AddAttributeSet({2});
  const int set_d = w.AddAttributeSet({3});
  // Three queries per attribute set, paper-range parameters scaled to the
  // bench stream (r band where clusters give tens of neighbors).
  for (const int set : {set_a, set_b, set_c, set_d}) {
    w.AddQuery(OutlierQuery(400.0, 10, 4000, 400, set));
    w.AddQuery(OutlierQuery(700.0, 20, 3200, 400, set));
    w.AddQuery(OutlierQuery(900.0, 30, 2400, 800, set));
  }
  return w;
}

std::vector<Point> BuildStream(int64_t n) {
  gen::SyntheticOptions options;
  options.dimensions = 4;
  options.seed = 20160626;
  return gen::GenerateSynthetic(n, options);
}

struct RunOutcome {
  double wall_ms = 0.0;
  RunMetrics metrics;
};

RunOutcome RunOnce(const Workload& w, const std::vector<Point>& points,
                   int num_threads) {
  MultiAttributeDetector detector(w, [](const Workload& sub) {
    return std::make_unique<SopDetector>(sub);
  });
  ExecOptions options;
  options.num_threads = num_threads;
  ExecutionEngine engine(options);
  Stopwatch watch;
  RunOutcome out;
  out.metrics = engine.Run(w, points, &detector);
  out.wall_ms = watch.ElapsedMillis();
  return out;
}

}  // namespace
}  // namespace sop

int main() {
  using namespace sop;
  const int64_t n = bench::FastMode() ? 8000 : 40000;
  const Workload workload = BuildWorkload();
  const std::vector<Point> points = BuildStream(n);
  std::printf(
      "micro_parallel: %lld points, %zu queries over 4 attribute-set "
      "partitions (multiattr-sop)\n",
      static_cast<long long>(n), workload.num_queries());

  const RunOutcome serial = RunOnce(workload, points, 1);
  std::printf("%8s %12s %12s %10s  %s\n", "threads", "wall_ms", "cpu/win_ms",
              "speedup", "latency");
  std::printf("%8d %12.1f %12.3f %10s  %s\n", 1, serial.wall_ms,
              serial.metrics.avg_cpu_ms_per_window, "1.00x",
              serial.metrics.LatencyToString().c_str());
  std::printf("RESULT bench=micro_parallel threads=1 wall_ms=%.1f "
              "speedup=1.00\n",
              serial.wall_ms);

  for (const int threads : {2, 4, 8}) {
    const RunOutcome pooled = RunOnce(workload, points, threads);
    // Identical result stream regardless of execution mode.
    if (pooled.metrics.total_emissions != serial.metrics.total_emissions ||
        pooled.metrics.total_outliers != serial.metrics.total_outliers) {
      std::fprintf(stderr,
                   "FATAL: parallel run diverged from serial "
                   "(emissions %llu vs %llu, outliers %llu vs %llu)\n",
                   static_cast<unsigned long long>(
                       pooled.metrics.total_emissions),
                   static_cast<unsigned long long>(
                       serial.metrics.total_emissions),
                   static_cast<unsigned long long>(
                       pooled.metrics.total_outliers),
                   static_cast<unsigned long long>(
                       serial.metrics.total_outliers));
      return 1;
    }
    const double speedup = serial.wall_ms / pooled.wall_ms;
    std::printf("%8d %12.1f %12.3f %9.2fx  %s\n", threads, pooled.wall_ms,
                pooled.metrics.avg_cpu_ms_per_window, speedup,
                pooled.metrics.LatencyToString().c_str());
    std::printf("RESULT bench=micro_parallel threads=%d wall_ms=%.1f "
                "speedup=%.2f\n",
                threads, pooled.wall_ms, speedup);
  }
  return 0;
}
