// Fig. 11: workloads with arbitrary window sizes (Table-1 case D) on the
// STT-like stock trade stream. Paper setting: slide 0.5K, r = 200, k = 30,
// win in [1K, 500K); workloads of 10 / 100 / 500 / 1000 queries.
//
// Scaling note (DESIGN.md Sec. 6): the window range is scaled to
// [1K, 40K) and the stream to 60K trades so the quadratic baselines finish
// on one core; the comparison structure (largest window dominates, SOP's
// safe-for-all pruning, MCOD's swift-query sharing) is unchanged.

#include "bench_data.h"
#include "figure.h"

int main() {
  using namespace sop;
  using namespace sop::bench;

  const int64_t kStream = FastMode() ? 12000 : 60000;
  const int64_t kWinHi = FastMode() ? 8000 : 40000;
  gen::WorkloadGenOptions options;
  options.slide_fixed = 500;
  options.r_fixed = 200.0;
  options.k_fixed = 30;
  options.win_lo = 1000;
  options.win_hi = kWinHi;
  options.slide_quantum = 500;

  FigureRunner runner("Fig.11", "Varying Win (workload D), STT stream");
  runner.AddNote("slide=500 r=200 k=30, win in [1000," +
                 std::to_string(kWinHi) + ") [paper: up to 500K, scaled]");
  runner.AddNote("stream: " + std::to_string(kStream) + " STT-like trades");
  runner.set_cap("leap", 500);
  runner.Run(MaybeShrinkSizes({10, 100, 500, 1000}),
             CaseWorkload(gen::WorkloadCase::kD, options),
             SttStream(kStream));
  return 0;
}
