// micro_kernel: per-pair vs batched distance confirmation on the grid
// candidate hot path.
//
// Reproduces the neighbor-search inner loop every grid-backed detector
// runs (fig-7 style setup: the paper's synthetic stream, a full window of
// alive points, range confirmation at several radii): for each probe the
// grid yields a candidate superset, and each configuration confirms the
// true r-neighborhood over the identical candidates:
//
//   perpair  the pre-kernel code shape: StreamBuffer::At + one
//            DistanceFn::operator() call per candidate;
//   scalar   DistanceKernel::PartitionWithinR over the columnar mirror,
//            portable tight-loop backend;
//   avx2     the same kernel with the AVX2 backend (skipped when the CPU
//            or build lacks it).
//
// Hit sets are asserted identical across configurations (the kernel's
// bit-identity contract), so the timing columns compare equal answers.
// Output: a table, RESULT lines, and BENCH_kernel.json with speedups
// relative to perpair.
//
//   RESULT bench=micro_kernel config=... r=... probes=... candidates=...
//          ms=... speedup=...

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "figure.h"
#include "sop/common/dist_kernel.h"
#include "sop/common/distance.h"
#include "sop/gen/synthetic.h"
#include "sop/index/grid.h"
#include "sop/stream/stream_buffer.h"

namespace sop {
namespace {

struct Outcome {
  double ms = 0.0;          // best-of-reps sweep time
  uint64_t hits = 0;        // total confirmed neighbors (checksum)
  double dist_sum = 0.0;    // sum of confirmed distances (checksum)
};

// One timed sweep: confirm `candidates[i]` against probe i at radius r.
// `config` selects the code shape; candidate lists are shared scratch and
// restored by the caller between configs.
template <typename Confirm>
Outcome TimeSweep(int reps, size_t num_probes, Confirm&& confirm) {
  using Clock = std::chrono::steady_clock;
  Outcome best;
  best.ms = -1.0;
  for (int rep = 0; rep < reps; ++rep) {
    Outcome out;
    const auto t0 = Clock::now();
    for (size_t i = 0; i < num_probes; ++i) confirm(i, &out);
    out.ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (best.ms < 0.0 || out.ms < best.ms) {
      best.ms = out.ms;
      best.hits = out.hits;
      best.dist_sum = out.dist_sum;
    }
  }
  return best;
}

}  // namespace
}  // namespace sop

int main() {
  using namespace sop;

  const bool fast = bench::FastMode();
  const int64_t window = fast ? 2000 : 10000;
  const size_t num_probes = fast ? 200 : 1000;
  const int reps = fast ? 3 : 5;
  // Paper-scale radii (fig 7 varies r over the synthetic stream; the
  // stream's coordinate scale puts interesting neighborhoods in the
  // hundreds).
  const std::vector<double> radii = {300.0, 600.0, 900.0};
  const double cell_size = 300.0;  // ~ the smallest radius

  gen::SyntheticOptions options;
  options.seed = 20160626;  // same stream bytes as the figure benches
  const std::vector<Point> points =
      gen::GenerateSynthetic(window + static_cast<int64_t>(num_probes),
                             options);

  const DistanceFn dist(Metric::kEuclidean);
  DistanceKernel kernel = dist.MakeKernel();
  GridIndex grid(dist, cell_size);
  StreamBuffer buffer(WindowType::kCount);
  for (int64_t s = 0; s < window; ++s) {
    Point p = points[static_cast<size_t>(s)];
    p.seq = s;  // the generator leaves seq assignment to the driver
    buffer.Append(std::move(p));
    grid.Insert(s, buffer.At(s));
  }
  const ColumnStore& cols = buffer.columns();
  const Point* probes = points.data() + window;

  std::printf("micro_kernel: grid candidate confirmation, per-pair vs "
              "batched kernel (%lld-point window, %zu probes, best of %d)\n",
              static_cast<long long>(window), num_probes, reps);
  std::printf("%-8s %8s %10s %12s %10s %9s\n", "config", "r", "candidates",
              "hits", "ms", "speedup");

  const bool avx2 = KernelBackendSupported(KernelBackend::kAvx2);
  if (!avx2) {
    std::fprintf(stderr, "note: avx2 backend unavailable here, skipping\n");
  }

  std::string json = "{\n  \"bench\": \"micro_kernel\",\n  \"window\": " +
                     std::to_string(window) +
                     ",\n  \"probes\": " + std::to_string(num_probes) +
                     ",\n  \"rows\": [\n";
  bool first_row = true;
  bool mismatch = false;
  double min_scalar_speedup = -1.0;

  std::vector<std::vector<Seq>> candidates(num_probes);
  std::vector<Seq> seq_scratch;
  std::vector<double> dist_scratch;
  for (const double r : radii) {
    uint64_t total_candidates = 0;
    for (size_t i = 0; i < num_probes; ++i) {
      grid.CollectCandidates(probes[i], r, &candidates[i]);
      total_candidates += candidates[i].size();
    }

    struct Config {
      const char* name;
      Outcome out;
    };
    std::vector<Config> configs;

    // perpair: the exact pre-kernel shape — row lookup + one call per pair.
    configs.push_back({"perpair", TimeSweep(
        reps, num_probes, [&](size_t i, Outcome* out) {
          const Point& p = probes[i];
          for (const Seq s : candidates[i]) {
            const double d = dist(p, buffer.At(s));
            if (d <= r) {
              ++out->hits;
              out->dist_sum += d;
            }
          }
        })});

    // Kernel backends: one PartitionWithinR per probe over the same
    // candidate list (copied into scratch — the call compacts in place).
    const auto kernel_sweep = [&](size_t i, Outcome* out) {
      const std::vector<Seq>& cand = candidates[i];
      seq_scratch.assign(cand.begin(), cand.end());
      dist_scratch.resize(cand.size());
      const size_t h = kernel.PartitionWithinR(
          cols, probes[i], seq_scratch.data(), seq_scratch.size(), r,
          dist_scratch.data());
      out->hits += h;
      for (size_t j = 0; j < h; ++j) out->dist_sum += dist_scratch[j];
    };
    SetKernelBackend(KernelBackend::kScalar);
    configs.push_back({"scalar", TimeSweep(reps, num_probes, kernel_sweep)});
    if (avx2) {
      SetKernelBackend(KernelBackend::kAvx2);
      configs.push_back({"avx2", TimeSweep(reps, num_probes, kernel_sweep)});
      SetKernelBackend(KernelBackend::kScalar);
    }

    for (const Config& c : configs) {
      const double speedup =
          c.out.ms > 0.0 ? configs[0].out.ms / c.out.ms : 0.0;
      if (std::string(c.name) == "scalar" &&
          (min_scalar_speedup < 0.0 || speedup < min_scalar_speedup)) {
        min_scalar_speedup = speedup;
      }
      if (c.out.hits != configs[0].out.hits ||
          c.out.dist_sum != configs[0].out.dist_sum) {
        std::fprintf(stderr,
                     "FAIL: config %s at r=%g disagrees with perpair "
                     "(hits %llu vs %llu) — backends must be bit-identical\n",
                     c.name, r, static_cast<unsigned long long>(c.out.hits),
                     static_cast<unsigned long long>(configs[0].out.hits));
        mismatch = true;
      }
      std::printf("%-8s %8g %10llu %12llu %10.3f %8.2fx\n", c.name, r,
                  static_cast<unsigned long long>(total_candidates),
                  static_cast<unsigned long long>(c.out.hits), c.out.ms,
                  speedup);
      std::printf("RESULT bench=micro_kernel config=%s r=%g probes=%zu "
                  "candidates=%llu hits=%llu ms=%.3f speedup=%.2f\n",
                  c.name, r, num_probes,
                  static_cast<unsigned long long>(total_candidates),
                  static_cast<unsigned long long>(c.out.hits), c.out.ms,
                  speedup);
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "    %s{\"config\": \"%s\", \"r\": %g, "
                    "\"candidates\": %llu, \"hits\": %llu, \"ms\": %.3f, "
                    "\"speedup\": %.2f}",
                    first_row ? "" : ",\n    ", c.name, r,
                    static_cast<unsigned long long>(total_candidates),
                    static_cast<unsigned long long>(c.out.hits), c.out.ms,
                    speedup);
      json += buf;
      first_row = false;
    }
  }
  json += "\n  ]\n}\n";

  if (mismatch) return 1;

  std::ofstream out("BENCH_kernel.json", std::ios::binary);
  if (!out || !(out << json) || !out.flush()) {
    std::fprintf(stderr, "cannot write BENCH_kernel.json\n");
    return 1;
  }
  std::fprintf(stderr, "wrote BENCH_kernel.json (min scalar speedup %.2fx)\n",
               min_scalar_speedup);
  return 0;
}
