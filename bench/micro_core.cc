// google-benchmark micro-benchmarks of the SOP core primitives: LSky
// operations, the K-SKY scan, plan compilation, and distance kernels.

#include <benchmark/benchmark.h>

#include <vector>

#include "sop/common/distance.h"
#include "sop/common/random.h"
#include "sop/core/ksky.h"
#include "sop/core/lsky.h"
#include "sop/gen/synthetic.h"
#include "sop/gen/workload_gen.h"
#include "sop/query/plan.h"
#include "sop/stream/stream_buffer.h"

namespace sop {
namespace {

void BM_DistanceEuclidean(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<double> a(static_cast<size_t>(dims)), b(a);
  for (auto& v : a) v = rng.Normal();
  for (auto& v : b) v = rng.Normal();
  const Point pa(0, 0, a), pb(1, 1, b);
  const DistanceFn dist(Metric::kEuclidean);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist(pa, pb));
  }
}
BENCHMARK(BM_DistanceEuclidean)->Arg(2)->Arg(8)->Arg(32);

void BM_LSkyAppendExpire(benchmark::State& state) {
  const int64_t n = state.range(0);
  LSky sky;
  for (auto _ : state) {
    sky.Clear();
    for (int64_t i = n; i > 0; --i) {
      sky.Append({i, i, static_cast<int32_t>(1 + (i % 7))});
    }
    sky.ExpireBefore(n / 2);
    benchmark::DoNotOptimize(sky.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LSkyAppendExpire)->Arg(64)->Arg(1024);

void BM_LSkyCountWithin(benchmark::State& state) {
  const int64_t n = state.range(0);
  LSky sky;
  for (int64_t i = n; i > 0; --i) {
    sky.Append({i, i, static_cast<int32_t>(1 + (i % 7))});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sky.CountWithin(4, n / 3, 30));
  }
}
BENCHMARK(BM_LSkyCountWithin)->Arg(64)->Arg(1024);

// One from-scratch K-SKY scan over a full window, for a dense (inlier) and
// a sparse (outlier) evaluation point.
void BM_KSkyFromScratch(benchmark::State& state) {
  const int64_t window = state.range(0);
  const bool dense = state.range(1) != 0;
  Workload w(WindowType::kCount);
  w.AddQuery(OutlierQuery(300.0, 30, window, window / 10));
  w.AddQuery(OutlierQuery(900.0, 100, window, window / 10));
  w.AddQuery(OutlierQuery(1500.0, 300, window, window / 10));
  WorkloadPlan plan(w);
  KSky ksky(&plan, w.MakeDistanceFn(0));

  gen::SyntheticOptions options;
  options.seed = 5;
  StreamBuffer buffer(WindowType::kCount);
  Seq s = 0;
  for (const Point& p : gen::GenerateSynthetic(window, options)) {
    Point copy = p;
    copy.seq = s++;
    buffer.Append(std::move(copy));
  }
  // A dense point sits on a cluster center; a sparse one far away.
  Point probe(s - 1, s - 1,
              dense ? std::vector<double>{5000.0, 5000.0}
                    : std::vector<double>{9999.0, 50.0});
  LSky skyband;
  for (auto _ : state) {
    ksky.EvaluatePoint(probe, buffer, buffer.next_seq(), 0,
                       /*from_scratch=*/true, &skyband);
    benchmark::DoNotOptimize(skyband.size());
  }
  state.SetLabel(dense ? "dense" : "sparse");
}
BENCHMARK(BM_KSkyFromScratch)
    ->Args({10000, 1})
    ->Args({10000, 0})
    ->Args({50000, 1})
    ->Args({50000, 0});

void BM_PlanCompile(benchmark::State& state) {
  const size_t queries = static_cast<size_t>(state.range(0));
  gen::WorkloadGenOptions options;
  options.slide_quantum = 500;
  options.slide_lo = 500;
  options.slide_hi = 5000;
  const Workload w = gen::GenerateWorkload(gen::WorkloadCase::kG, queries,
                                           WindowType::kCount, options);
  for (auto _ : state) {
    WorkloadPlan plan(w);
    benchmark::DoNotOptimize(plan.num_layers());
  }
}
BENCHMARK(BM_PlanCompile)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace sop

BENCHMARK_MAIN();
