// Ablation of cross-group sharing (paper Sec. 3.2): integrated SOP (one
// LSky per point serving every k-group via Def. 6) versus the strawman
// that runs an independent skyband query per k-group. The paper predicts
// "significant wastage of CPU and memory resources" for the strawman
// because skyband points are shared across groups.

#include <cstdio>
#include <memory>

#include "bench_data.h"
#include "figure.h"
#include "sop/core/grouped_sop.h"
#include "sop/core/sop_detector.h"
#include "sop/detector/driver.h"

int main() {
  using namespace sop;
  using namespace sop::bench;

  const int64_t kStream = FastMode() ? 6000 : 20000;
  gen::WorkloadGenOptions options;
  options.win_fixed = 10000;
  options.slide_fixed = 500;

  std::printf(
      "================================================================\n");
  std::printf("Ablation — cross-group sharing (integrated SOP vs one "
              "skyband per k-group)\n");
  std::printf("  case-C workloads (k in [30,1500), r in [200,2000)), "
              "%lld-point synthetic stream\n",
              static_cast<long long>(kStream));
  std::printf(
      "================================================================\n");
  std::printf("%10s %16s %16s %16s %16s %10s\n", "queries", "sop cpu(ms)",
              "grouped cpu(ms)", "sop mem(MB)", "grouped mem(MB)", "groups");

  for (const size_t num_queries : MaybeShrinkSizes({10, 50, 100, 200})) {
    gen::WorkloadGenOptions per_size = options;
    per_size.seed = options.seed + num_queries * 977;
    const Workload workload = gen::GenerateWorkload(
        gen::WorkloadCase::kC, num_queries, WindowType::kCount, per_size);

    SopDetector integrated(workload);
    gen::SyntheticOptions data;
    data.seed = 20160626;
    gen::SyntheticSource s1(kStream, data);
    const RunMetrics m_int = RunStream(workload, &s1, &integrated);

    GroupedSopDetector grouped(workload);
    gen::SyntheticSource s2(kStream, data);
    const RunMetrics m_grp = RunStream(workload, &s2, &grouped);

    std::printf("%10zu %16.3f %16.3f %16.3f %16.3f %10zu\n", num_queries,
                m_int.avg_cpu_ms_per_window, m_grp.avg_cpu_ms_per_window,
                static_cast<double>(m_int.peak_memory_bytes) / 1048576.0,
                static_cast<double>(m_grp.peak_memory_bytes) / 1048576.0,
                grouped.num_children());
    std::printf("RESULT fig=group_sharing queries=%zu sop_cpu=%.4f "
                "grouped_cpu=%.4f sop_mem_mb=%.4f grouped_mem_mb=%.4f\n",
                num_queries, m_int.avg_cpu_ms_per_window,
                m_grp.avg_cpu_ms_per_window,
                static_cast<double>(m_int.peak_memory_bytes) / 1048576.0,
                static_cast<double>(m_grp.peak_memory_bytes) / 1048576.0);
    if (m_int.total_outliers != m_grp.total_outliers) {
      std::printf("ERROR: result mismatch between variants!\n");
      return 1;
    }
    std::fflush(stdout);
  }
  return 0;
}
