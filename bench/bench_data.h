// Shared stream/workload builders for the figure benches.

#ifndef SOP_BENCH_BENCH_DATA_H_
#define SOP_BENCH_BENCH_DATA_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "figure.h"
#include "sop/gen/stt.h"
#include "sop/gen/synthetic.h"
#include "sop/gen/workload_gen.h"
#include "sop/io/csv.h"
#include "sop/stream/source.h"

namespace sop {
namespace bench {

/// When the SOP_BENCH_DATA environment variable names a CSV file, every
/// bench stream factory reads (a prefix of) it instead of generating
/// points, so the figure harness can be pointed at a real trace. The load
/// is fail-fast; a missing/malformed/empty file aborts the bench with a
/// nonzero exit instead of silently benchmarking an empty stream.
inline std::unique_ptr<StreamSource> MaybeFileStream(int64_t n) {
  const char* path = std::getenv("SOP_BENCH_DATA");
  if (path == nullptr || path[0] == '\0') return nullptr;
  std::vector<Point> points;
  std::string error;
  if (!io::LoadPointsCsv(path, &points, &error)) {
    std::fprintf(stderr, "SOP_BENCH_DATA: %s\n", error.c_str());
    std::exit(1);
  }
  if (points.empty()) {
    std::fprintf(stderr, "SOP_BENCH_DATA: %s holds no points\n", path);
    std::exit(1);
  }
  if (n > 0 && static_cast<int64_t>(points.size()) > n) {
    points.resize(static_cast<size_t>(n));
  }
  return std::make_unique<VectorSource>(std::move(points));
}

/// Synthetic stream factory (paper Sec. 6.2 experiments). The generator
/// seeds are fixed so every detector and every bench run sees the same
/// bytes.
inline StreamFactory SyntheticStream(int64_t n) {
  return [n]() -> std::unique_ptr<StreamSource> {
    if (auto file = MaybeFileStream(n)) return file;
    gen::SyntheticOptions options;
    options.seed = 20160626;  // SIGMOD'16 opening day
    return std::make_unique<gen::SyntheticSource>(n, options);
  };
}

/// STT-like stock trade stream factory (paper Sec. 6.3 experiments).
/// Count-based windows are used (as in the paper's reported runs), so the
/// trade timestamps are irrelevant to windowing.
inline StreamFactory SttStream(int64_t n) {
  return [n]() -> std::unique_ptr<StreamSource> {
    if (auto file = MaybeFileStream(n)) return file;
    gen::SttOptions options;
    options.seed = 19980427;  // STT trace vintage
    return std::make_unique<gen::SttSource>(n, options);
  };
}

/// Workload factory for one Table-1 case with bench-scaled ranges.
inline WorkloadFactory CaseWorkload(gen::WorkloadCase wcase,
                                    gen::WorkloadGenOptions options) {
  return [wcase, options](size_t num_queries) {
    gen::WorkloadGenOptions per_size = options;
    // Decorrelate parameter draws across workload sizes, deterministically.
    per_size.seed = options.seed + num_queries * 1315423911ULL;
    return gen::GenerateWorkload(wcase, num_queries, WindowType::kCount,
                                 per_size);
  };
}

}  // namespace bench
}  // namespace sop

#endif  // SOP_BENCH_BENCH_DATA_H_
