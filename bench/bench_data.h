// Shared stream/workload builders for the figure benches.

#ifndef SOP_BENCH_BENCH_DATA_H_
#define SOP_BENCH_BENCH_DATA_H_

#include <memory>

#include "figure.h"
#include "sop/gen/stt.h"
#include "sop/gen/synthetic.h"
#include "sop/gen/workload_gen.h"

namespace sop {
namespace bench {

/// Synthetic stream factory (paper Sec. 6.2 experiments). The generator
/// seeds are fixed so every detector and every bench run sees the same
/// bytes.
inline StreamFactory SyntheticStream(int64_t n) {
  return [n]() -> std::unique_ptr<StreamSource> {
    gen::SyntheticOptions options;
    options.seed = 20160626;  // SIGMOD'16 opening day
    return std::make_unique<gen::SyntheticSource>(n, options);
  };
}

/// STT-like stock trade stream factory (paper Sec. 6.3 experiments).
/// Count-based windows are used (as in the paper's reported runs), so the
/// trade timestamps are irrelevant to windowing.
inline StreamFactory SttStream(int64_t n) {
  return [n]() -> std::unique_ptr<StreamSource> {
    gen::SttOptions options;
    options.seed = 19980427;  // STT trace vintage
    return std::make_unique<gen::SttSource>(n, options);
  };
}

/// Workload factory for one Table-1 case with bench-scaled ranges.
inline WorkloadFactory CaseWorkload(gen::WorkloadCase wcase,
                                    gen::WorkloadGenOptions options) {
  return [wcase, options](size_t num_queries) {
    gen::WorkloadGenOptions per_size = options;
    // Decorrelate parameter draws across workload sizes, deterministically.
    per_size.seed = options.seed + num_queries * 1315423911ULL;
    return gen::GenerateWorkload(wcase, num_queries, WindowType::kCount,
                                 per_size);
  };
}

}  // namespace bench
}  // namespace sop

#endif  // SOP_BENCH_BENCH_DATA_H_
