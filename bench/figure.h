// Harness for regenerating the paper's evaluation figures.
//
// Each fig*.cc binary builds the workloads of one figure, streams the same
// data through SOP and the baselines, and prints the figure's two series —
// average CPU time per window (ms) and peak evidence memory (MB) — as a
// table plus machine-readable RESULT lines.
//
// Absolute numbers differ from the paper (different hardware, C++ vs Java,
// scaled-down streams documented per bench); the comparisons the paper
// makes — who wins, by what order of magnitude, how each method scales
// with workload size — are what these benches reproduce. See
// EXPERIMENTS.md for the side-by-side reading.

#ifndef SOP_BENCH_FIGURE_H_
#define SOP_BENCH_FIGURE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sop/detector/factory.h"
#include "sop/detector/metrics.h"
#include "sop/query/workload.h"
#include "sop/stream/source.h"

namespace sop {
namespace bench {

/// True when SOP_BENCH_FAST=1: shrink workload sizes for smoke runs.
bool FastMode();

/// Builds a fresh source for one detector run (every detector must see an
/// identical stream).
using StreamFactory = std::function<std::unique_ptr<StreamSource>()>;

/// Builds the workload for a given size (number of queries).
using WorkloadFactory = std::function<Workload(size_t num_queries)>;

/// Runs every (size, detector) cell of one figure and prints its tables.
class FigureRunner {
 public:
  FigureRunner(std::string figure_id, std::string description);

  /// Detectors to compare, in column order (factory names, see
  /// detector/factory.h). Default: "sop", "mcod", "leap".
  void set_detectors(std::vector<std::string> names) {
    names_ = std::move(names);
  }

  /// Skips detector `name` for workloads larger than `max_queries`
  /// (resource budget); skipped cells print "-".
  void set_cap(const std::string& name, size_t max_queries) {
    caps_[name] = max_queries;
  }

  /// Free-form parameter notes echoed under the title.
  void AddNote(const std::string& note) { notes_.push_back(note); }

  /// Runs all cells and prints the CPU and MEM tables.
  void Run(const std::vector<size_t>& workload_sizes,
           const WorkloadFactory& workload_factory,
           const StreamFactory& stream_factory);

 private:
  std::string figure_id_;
  std::string description_;
  std::vector<std::string> notes_;
  std::vector<std::string> names_ = {"sop", "mcod", "leap"};
  std::map<std::string, size_t> caps_;
};

/// Shrinks each size by 1/8 (min 1) in fast mode.
std::vector<size_t> MaybeShrinkSizes(std::vector<size_t> sizes);

}  // namespace bench
}  // namespace sop

#endif  // SOP_BENCH_FIGURE_H_
