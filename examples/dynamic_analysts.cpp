// Dynamic analysts: queries joining and leaving a live stream.
//
//   build/examples/dynamic_analysts
//
// The paper's workload is fixed up front; real monitoring floors are not —
// analysts submit new parameterizations mid-stream and retire old ones.
// SopSession recompiles the shared plan on change and replays its retained
// history so a freshly added query immediately sees a fully populated
// window instead of starting cold.

#include <cstdio>
#include <map>
#include <vector>

#include "sop/sop.h"

int main() {
  using namespace sop;

  const int64_t kBatch = 500;  // slides are multiples of this
  SopSession session(WindowType::kCount, Metric::kEuclidean,
                     /*history_window=*/8000);

  gen::SyntheticOptions data;
  data.seed = 11;
  const std::vector<Point> stream = gen::GenerateSynthetic(20000, data);

  // Analyst A is present from the start.
  const QueryId analyst_a =
      session.AddQuery(OutlierQuery(600.0, 15, 4000, 1000));
  QueryId analyst_b = 0;

  std::map<QueryId, uint64_t> flags;
  for (int64_t b = 0; b * kBatch < static_cast<int64_t>(stream.size()); ++b) {
    // Analyst B joins at point 8000 with a longer horizon; thanks to
    // history replay, the first emission already covers a full window.
    if (b * kBatch == 8000) {
      analyst_b = session.AddQuery(OutlierQuery(900.0, 25, 8000, 2000));
      std::printf("[t=%lld] analyst B joined (id %lld)\n",
                  static_cast<long long>(b * kBatch),
                  static_cast<long long>(analyst_b));
    }
    // Analyst A retires at point 14000.
    if (b * kBatch == 14000) {
      session.RemoveQuery(analyst_a);
      std::printf("[t=%lld] analyst A retired\n",
                  static_cast<long long>(b * kBatch));
    }
    std::vector<Point> batch(
        stream.begin() + static_cast<size_t>(b * kBatch),
        stream.begin() + static_cast<size_t>((b + 1) * kBatch));
    for (const SessionResult& r :
         session.Advance(std::move(batch), (b + 1) * kBatch)) {
      flags[r.query_id] += r.outliers.size();
    }
  }

  std::printf("\nflag events per analyst:\n");
  for (const auto& [id, count] : flags) {
    std::printf("  analyst %s: %llu\n", id == analyst_a ? "A" : "B",
                static_cast<unsigned long long>(count));
  }
  std::printf("session evidence+history footprint: %.2f MB\n",
              static_cast<double>(session.MemoryBytes()) / 1048576.0);
  return 0;
}
