// Parameter exploration: one analyst sweeps a grid of (r, k) settings
// because the right parameters are unknown up front (paper Sec. 1: "even a
// single data analyst may submit multiple queries with distinct parameter
// settings").
//
//   build/examples/parameter_exploration
//
// The whole grid runs as ONE shared SOP workload; the example prints the
// outlier rate each setting produces (a cheap way to pick a knee point)
// and compares the shared run against per-query LEAP execution to show
// what sharing buys.

#include <cstdio>
#include <memory>
#include <vector>

#include "sop/sop.h"

int main() {
  using namespace sop;

  const std::vector<double> r_grid = {300, 600, 1200, 2400};
  const std::vector<int64_t> k_grid = {10, 20, 40};
  Workload workload(WindowType::kCount);
  for (const double r : r_grid) {
    for (const int64_t k : k_grid) {
      workload.AddQuery(OutlierQuery(r, k, /*win=*/5000, /*slide=*/1000));
    }
  }

  const int64_t kPoints = 15000;
  auto make_source = [&] {
    gen::SyntheticOptions data;
    data.seed = 99;
    return std::make_unique<gen::SyntheticSource>(kPoints, data);
  };

  // Shared execution (SOP).
  std::vector<uint64_t> outliers(workload.num_queries(), 0);
  std::vector<uint64_t> evaluated(workload.num_queries(), 0);
  std::unique_ptr<OutlierDetector> sop =
      CreateDetector("sop", workload);
  auto source = make_source();
  const RunMetrics sop_metrics = RunStream(
      workload, source.get(), sop.get(), [&](const QueryResult& result) {
        outliers[result.query_index] += result.outliers.size();
        ++evaluated[result.query_index];
      });

  std::printf("Outlier rate per (r, k) setting — window 5000, slide 1000:\n");
  std::printf("%8s", "r \\ k");
  for (const int64_t k : k_grid) std::printf(" %11lld", static_cast<long long>(k));
  std::printf("\n");
  size_t qi = 0;
  for (const double r : r_grid) {
    std::printf("%8.0f", r);
    for (size_t c = 0; c < k_grid.size(); ++c, ++qi) {
      // Average outliers per emitted window.
      const double avg = evaluated[qi] == 0
                             ? 0.0
                             : static_cast<double>(outliers[qi]) /
                                   static_cast<double>(evaluated[qi]);
      std::printf(" %11.1f", avg);
    }
    std::printf("\n");
  }

  // The same workload, one independent LEAP instance per query (the
  // pre-SOP way to run a parameter sweep).
  std::unique_ptr<OutlierDetector> leap =
      CreateDetector("leap", workload);
  auto source2 = make_source();
  const RunMetrics leap_metrics =
      RunStream(workload, source2.get(), leap.get());

  std::printf("\nShared SOP run:        %8.2f ms/slide, peak %7.2f MB\n",
              sop_metrics.avg_cpu_ms_per_window,
              static_cast<double>(sop_metrics.peak_memory_bytes) / 1048576.0);
  std::printf("Per-query LEAP run:    %8.2f ms/slide, peak %7.2f MB\n",
              leap_metrics.avg_cpu_ms_per_window,
              static_cast<double>(leap_metrics.peak_memory_bytes) / 1048576.0);
  std::printf("Sharing speedup:       %8.2fx CPU, %7.2fx memory\n",
              leap_metrics.avg_cpu_ms_per_window /
                  sop_metrics.avg_cpu_ms_per_window,
              static_cast<double>(leap_metrics.peak_memory_bytes) /
                  static_cast<double>(sop_metrics.peak_memory_bytes));
  return 0;
}
