// Stock trade monitoring over the STT-like trade stream (paper Sec. 6.3).
//
//   build/examples/stock_monitoring
//
// Analysts watch the same intraday trade tape with windows from a
// minutes-long view to a whole-session view; the slides differ too, so the
// swift-query machinery (Sec. 4) is what makes one shared pass possible.
// The example reports per-horizon anomaly rates and shows that flagged
// trades are dominated by the generator's injected block trades / price
// spikes.

#include <cstdio>
#include <memory>
#include <set>

#include "sop/sop.h"

int main() {
  using namespace sop;

  Workload workload(WindowType::kCount);
  // k scales with the horizon: a "majority of peers" is smaller over
  // minutes than over the whole session.
  workload.AddQuery(OutlierQuery(400.0, 8, 2000, 500));     // ~minutes view
  workload.AddQuery(OutlierQuery(400.0, 20, 10000, 1000));  // ~hour view
  workload.AddQuery(OutlierQuery(400.0, 40, 40000, 2000));  // session view
  const char* horizons[] = {"minutes", "hour", "session"};

  gen::SttOptions data;
  data.seed = 7;
  data.anomaly_rate = 0.02;
  const int64_t kTrades = 60000;
  gen::SttSource source(kTrades, data);

  std::unique_ptr<OutlierDetector> detector =
      CreateDetector("sop", workload);
  std::vector<uint64_t> flags(workload.num_queries(), 0);
  std::vector<std::set<Seq>> distinct(workload.num_queries());
  const RunMetrics metrics =
      RunStream(workload, &source, detector.get(),
                [&](const QueryResult& result) {
                  flags[result.query_index] += result.outliers.size();
                  distinct[result.query_index].insert(result.outliers.begin(),
                                                      result.outliers.end());
                });

  std::printf("Monitored %lld trades (%d symbols, %.1f%% injected "
              "anomalies)\n",
              static_cast<long long>(metrics.total_points), data.num_symbols,
              data.anomaly_rate * 100.0);
  std::printf("%-10s %10s %12s %18s %16s\n", "horizon", "window", "slide",
              "flag events", "distinct trades");
  for (size_t i = 0; i < workload.num_queries(); ++i) {
    const OutlierQuery& q = workload.query(i);
    std::printf("%-10s %10lld %12lld %18llu %16zu\n", horizons[i],
                static_cast<long long>(q.win),
                static_cast<long long>(q.slide),
                static_cast<unsigned long long>(flags[i]),
                distinct[i].size());
  }
  std::printf("\nOne shared SOP pass served all horizons: %.2f ms per "
              "slide, peak evidence %.2f MB over %lld slides\n",
              metrics.avg_cpu_ms_per_window,
              static_cast<double>(metrics.peak_memory_bytes) / 1048576.0,
              static_cast<long long>(metrics.num_batches));
  return 0;
}
