// Quickstart: detect distance-based outliers for three differently
// parameterized queries over one stream with a single shared SOP detector.
//
//   build/examples/quickstart
//
// Walks through the whole public API surface — everything an application
// needs comes from the single umbrella header sop/sop.h: build a Workload,
// create the detector through the factory by name, run a stream through
// the driver, consume per-query results, and read the run metrics.

#include <cstdio>
#include <memory>

#include "sop/sop.h"

int main() {
  using namespace sop;

  // 1. Describe the workload: count-based sliding windows, Euclidean
  //    distance, three analysts with different ideas of "anomalous".
  Workload workload(WindowType::kCount);
  workload.AddQuery(OutlierQuery(/*r=*/300.0, /*k=*/10, /*win=*/2000,
                                 /*slide=*/500));  // strict, short-term
  workload.AddQuery(OutlierQuery(/*r=*/800.0, /*k=*/20, /*win=*/4000,
                                 /*slide=*/1000));  // medium
  workload.AddQuery(OutlierQuery(/*r=*/1500.0, /*k=*/50, /*win=*/8000,
                                 /*slide=*/2000));  // lenient, long-term
  std::printf("Workload:\n");
  for (size_t i = 0; i < workload.num_queries(); ++i) {
    std::printf("  [%zu] %s\n", i, workload.query(i).ToString().c_str());
  }

  // 2. One shared detector answers all three queries in a single pass per
  //    point (the paper's SOP algorithm).
  std::unique_ptr<OutlierDetector> detector =
      CreateDetector("sop", workload);

  // 3. Stream 12,000 synthetic points (Gaussian inliers + uniform
  //    outliers) through the detector and consume emissions as they
  //    happen.
  gen::SyntheticOptions data;
  data.seed = 42;
  gen::SyntheticSource source(12000, data);
  uint64_t emissions = 0;
  const RunMetrics metrics = RunStream(
      workload, &source, detector.get(), [&](const QueryResult& result) {
        // Print the first few emissions in full, then just count.
        if (++emissions <= 6) {
          std::printf("query %zu @ boundary %lld: %zu outliers",
                      result.query_index,
                      static_cast<long long>(result.boundary),
                      result.outliers.size());
          if (!result.outliers.empty()) {
            std::printf(" (first: point #%lld)",
                        static_cast<long long>(result.outliers.front()));
          }
          std::printf("\n");
        }
      });

  // 4. Run metrics: the paper's CPU and MEM measures.
  std::printf("...\n%llu emissions total\n",
              static_cast<unsigned long long>(emissions));
  std::printf("run: %s\n", metrics.ToString().c_str());
  return 0;
}
