// Fraud monitoring: the paper's motivating scenario (Sec. 1).
//
//   build/examples/fraud_monitoring
//
// Several analysts watch the same transaction stream, each with their own
// interpretation of "abnormal": different distance thresholds (how unusual
// an amount/velocity pair must be), different majorities (k), and
// different horizons (window/slide). SOP answers all of them with one
// shared pass; this example also shows the workload-spec text format and
// per-analyst reporting.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sop/sop.h"

namespace {

using namespace sop;

// Transactions as 2-D points: (scaled amount, scaled velocity). Most
// customers produce amounts around a few stable profiles; fraud shows up
// as rare (amount, velocity) combinations far from every profile.
class TransactionSource : public StreamSource {
 public:
  TransactionSource(int64_t n, uint64_t seed) : rng_(seed), remaining_(n) {}

  bool Next(Point* out) override {
    if (remaining_-- <= 0) return false;
    out->seq = 0;
    out->time = time_ += rng_.UniformInt(0, 3);
    double amount, velocity;
    if (rng_.Bernoulli(0.015)) {
      // Fraud-like behaviour: uniformly weird.
      amount = rng_.UniformDouble(0, 10000);
      velocity = rng_.UniformDouble(0, 10000);
    } else {
      // One of three spending profiles (groceries, bills, salary-day).
      const int profile = static_cast<int>(rng_.NextBelow(3));
      const double centers[3][2] = {{1200, 800}, {3500, 2000}, {7000, 4500}};
      amount = rng_.Normal(centers[profile][0], 180.0);
      velocity = rng_.Normal(centers[profile][1], 180.0);
    }
    out->values = {amount, velocity};
    return true;
  }

 private:
  Rng rng_;
  int64_t remaining_;
  Timestamp time_ = 0;
};

}  // namespace

int main() {
  // Analyst workload, written in the text format `sop_cli` also accepts.
  const std::string spec = R"(
window_type count
metric euclidean
# analyst A: aggressive short-horizon screening
query 400 8 1500 250
# analyst B: the same radius but a longer memory
query 400 8 6000 1000
# analyst C: conservative, needs strong evidence
query 900 25 3000 500
# analyst D: very long horizon, weekly-report style
query 700 15 12000 2000
)";
  Workload workload;
  std::string error;
  if (!io::ParseWorkloadSpec(spec, &workload, &error)) {
    std::fprintf(stderr, "bad workload: %s\n", error.c_str());
    return 1;
  }
  const char* analysts[] = {"A (short, strict)", "B (long memory)",
                            "C (conservative)", "D (weekly view)"};

  std::unique_ptr<OutlierDetector> detector =
      CreateDetector("sop", workload);
  TransactionSource source(20000, /*seed=*/2026);

  // Tally flagged transactions per analyst; remember each transaction's
  // first flagger.
  std::vector<uint64_t> flags(workload.num_queries(), 0);
  std::map<Seq, size_t> first_flagger;
  const RunMetrics metrics =
      RunStream(workload, &source, detector.get(),
                [&](const QueryResult& result) {
                  flags[result.query_index] += result.outliers.size();
                  for (Seq s : result.outliers) {
                    first_flagger.emplace(s, result.query_index);
                  }
                });

  std::printf("Processed %lld transactions in %lld window slides\n",
              static_cast<long long>(metrics.total_points),
              static_cast<long long>(metrics.num_batches));
  std::printf("%-20s %16s\n", "analyst", "flag events");
  for (size_t i = 0; i < workload.num_queries(); ++i) {
    std::printf("%-20s %16llu\n", analysts[i],
                static_cast<unsigned long long>(flags[i]));
  }
  std::printf("%zu distinct transactions were flagged at least once\n",
              first_flagger.size());
  std::printf("shared-detector cost: %.2f ms per slide, peak evidence %.2f MB\n",
              metrics.avg_cpu_ms_per_window,
              static_cast<double>(metrics.peak_memory_bytes) / 1048576.0);
  return 0;
}
